(* PFCP-lite (Packet Forwarding Control Protocol, 3GPP TS 29.244) — the N4
   interface the SMF uses to program PFCP sessions, PDRs and FARs into the
   UPF. A reduced but genuine wire format: the real header layout (version,
   S flag, message type, length, SEID, sequence) and nested TLV information
   elements with the standard IE type numbers. *)

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* ----- message and IE type numbers (TS 29.244 subset) ----- *)

let msg_session_establishment_request = 50
let msg_session_establishment_response = 51
let msg_session_modification_request = 52
let msg_session_modification_response = 53
let msg_session_deletion_request = 54
let msg_session_deletion_response = 55

let ie_create_pdr = 1
let ie_pdi = 2
let ie_create_far = 3
let ie_cause = 19
let ie_precedence = 29
let ie_apply_action = 44
let ie_pdr_id = 56
let ie_fseid = 57
let ie_outer_header_creation = 84
let ie_ue_ip = 93
let ie_far_id = 108

let cause_accepted = 1
let cause_request_rejected = 64
let cause_no_resources = 71
let cause_session_not_found = 66

(* ----- structured view ----- *)

type pdi = { src_port_lo : int; src_port_hi : int; proto : int }

type create_pdr = { pdr_id : int; precedence : int32; pdi : pdi; far_id : int32 }

type create_far = {
  far_id_v : int32;
  forward : bool;
  outer_teid : int32;
  outer_ipv4 : Ipv4.addr;
}

type session_establishment = {
  cp_seid : int64;  (* control-plane F-SEID *)
  cp_addr : Ipv4.addr;
  ue_ip : Ipv4.addr;
  pdrs : create_pdr list;
  fars : create_far list;
}

type message =
  | Establishment_request of session_establishment
  | Establishment_response of { cause : int; up_seid : int64 }
  | Deletion_request  (* SEID in header addresses the session *)
  | Deletion_response of { cause : int }

type packet = { seid : int64; seq : int; payload : message }

(* ----- encoding ----- *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let put_u16 b v =
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u24 b v =
  put_u8 b (v lsr 16);
  put_u16 b (v land 0xFFFF)

let put_u32 b (v : int32) =
  let v = Int32.to_int v land 0xFFFFFFFF in
  put_u16 b (v lsr 16);
  put_u16 b (v land 0xFFFF)

let put_u64 b (v : int64) =
  put_u32 b (Int64.to_int32 (Int64.shift_right_logical v 32));
  put_u32 b (Int64.to_int32 v)

(* One TLV IE: type, length, value. *)
let ie b ty body =
  put_u16 b ty;
  put_u16 b (String.length body);
  Buffer.add_string b body

let build body_fn =
  let b = Buffer.create 64 in
  body_fn b;
  Buffer.contents b

let encode_pdi (p : pdi) =
  build (fun b ->
      put_u16 b p.src_port_lo;
      put_u16 b p.src_port_hi;
      put_u8 b p.proto)

let encode_create_pdr (p : create_pdr) =
  build (fun b ->
      ie b ie_pdr_id (build (fun b -> put_u16 b p.pdr_id));
      ie b ie_precedence (build (fun b -> put_u32 b p.precedence));
      ie b ie_pdi (encode_pdi p.pdi);
      ie b ie_far_id (build (fun b -> put_u32 b p.far_id)))

let encode_create_far (f : create_far) =
  build (fun b ->
      ie b ie_far_id (build (fun b -> put_u32 b f.far_id_v));
      ie b ie_apply_action (build (fun b -> put_u8 b (if f.forward then 0x02 else 0x01)));
      ie b ie_outer_header_creation
        (build (fun b ->
             put_u32 b f.outer_teid;
             put_u32 b f.outer_ipv4)))

let msg_type_of = function
  | Establishment_request _ -> msg_session_establishment_request
  | Establishment_response _ -> msg_session_establishment_response
  | Deletion_request -> msg_session_deletion_request
  | Deletion_response _ -> msg_session_deletion_response

let encode (pkt : packet) =
  let body =
    build (fun b ->
        match pkt.payload with
        | Establishment_request e ->
            ie b ie_fseid
              (build (fun b ->
                   put_u64 b e.cp_seid;
                   put_u32 b e.cp_addr));
            ie b ie_ue_ip (build (fun b -> put_u32 b e.ue_ip));
            List.iter (fun p -> ie b ie_create_pdr (encode_create_pdr p)) e.pdrs;
            List.iter (fun f -> ie b ie_create_far (encode_create_far f)) e.fars
        | Establishment_response r ->
            ie b ie_cause (build (fun b -> put_u8 b r.cause));
            ie b ie_fseid
              (build (fun b ->
                   put_u64 b r.up_seid;
                   put_u32 b 0l))
        | Deletion_request -> ()
        | Deletion_response r -> ie b ie_cause (build (fun b -> put_u8 b r.cause)))
  in
  build (fun b ->
      put_u8 b 0x21 (* version 1, S=1 *);
      put_u8 b (msg_type_of pkt.payload);
      put_u16 b (String.length body + 12) (* SEID + seq + spare *);
      put_u64 b pkt.seid;
      put_u24 b pkt.seq;
      put_u8 b 0 (* spare *);
      Buffer.add_string b body)

(* ----- decoding ----- *)

type cursor = { s : string; mutable off : int; stop : int }

let need c n = if c.off + n > c.stop then fail "truncated at offset %d" c.off

let get_u8 c =
  need c 1;
  let v = Char.code c.s.[c.off] in
  c.off <- c.off + 1;
  v

let get_u16 c =
  let hi = get_u8 c in
  (hi lsl 8) lor get_u8 c

let get_u24 c =
  let hi = get_u8 c in
  (hi lsl 16) lor get_u16 c

let get_u32 c : int32 =
  let hi = get_u16 c in
  Int32.logor (Int32.shift_left (Int32.of_int hi) 16) (Int32.of_int (get_u16 c))

let get_u64 c : int64 =
  let hi = get_u32 c in
  Int64.logor
    (Int64.shift_left (Int64.of_int32 hi) 32)
    (Int64.logand (Int64.of_int32 (get_u32 c)) 0xFFFFFFFFL)

(* Iterate the TLVs of a grouped IE body. *)
let fold_ies c f acc =
  let acc = ref acc in
  while c.off < c.stop do
    let ty = get_u16 c in
    let len = get_u16 c in
    need c len;
    let sub = { s = c.s; off = c.off; stop = c.off + len } in
    c.off <- c.off + len;
    acc := f !acc ty sub
  done;
  !acc

let decode_pdi c =
  let lo = get_u16 c in
  let hi = get_u16 c in
  let proto = get_u8 c in
  if lo > hi then fail "PDI port range inverted";
  { src_port_lo = lo; src_port_hi = hi; proto }

let decode_create_pdr c =
  let pdr_id = ref None and prec = ref 0l and pdi = ref None and far = ref None in
  ignore
    (fold_ies c
       (fun () ty sub ->
         if ty = ie_pdr_id then pdr_id := Some (get_u16 sub)
         else if ty = ie_precedence then prec := get_u32 sub
         else if ty = ie_pdi then pdi := Some (decode_pdi sub)
         else if ty = ie_far_id then far := Some (get_u32 sub))
       ());
  match (!pdr_id, !pdi, !far) with
  | Some pdr_id, Some pdi, Some far_id -> { pdr_id; precedence = !prec; pdi; far_id }
  | _ -> fail "Create PDR missing mandatory IEs"

let decode_create_far c =
  let far = ref None and fwd = ref false and teid = ref 0l and ip = ref 0l in
  ignore
    (fold_ies c
       (fun () ty sub ->
         if ty = ie_far_id then far := Some (get_u32 sub)
         else if ty = ie_apply_action then fwd := get_u8 sub land 0x02 <> 0
         else if ty = ie_outer_header_creation then begin
           teid := get_u32 sub;
           ip := get_u32 sub
         end)
       ());
  match !far with
  | Some far_id_v -> { far_id_v; forward = !fwd; outer_teid = !teid; outer_ipv4 = !ip }
  | None -> fail "Create FAR missing FAR ID"

let decode (s : string) : packet =
  let c = { s; off = 0; stop = String.length s } in
  let flags = get_u8 c in
  if flags lsr 4 <> 2 then fail "unsupported PFCP version";
  if flags land 0x01 = 0 then fail "S flag required";
  let mt = get_u8 c in
  let len = get_u16 c in
  if len + 4 <> String.length s then fail "length field mismatch";
  let seid = get_u64 c in
  let seq = get_u24 c in
  ignore (get_u8 c) (* spare *);
  let payload =
    if mt = msg_session_establishment_request then begin
      let cp_seid = ref 0L and cp_addr = ref 0l and ue_ip = ref None in
      let pdrs = ref [] and fars = ref [] in
      ignore
        (fold_ies c
           (fun () ty sub ->
             if ty = ie_fseid then begin
               cp_seid := get_u64 sub;
               cp_addr := get_u32 sub
             end
             else if ty = ie_ue_ip then ue_ip := Some (get_u32 sub)
             else if ty = ie_create_pdr then pdrs := decode_create_pdr sub :: !pdrs
             else if ty = ie_create_far then fars := decode_create_far sub :: !fars)
           ());
      match !ue_ip with
      | None -> fail "Establishment Request missing UE IP"
      | Some ue_ip ->
          Establishment_request
            {
              cp_seid = !cp_seid;
              cp_addr = !cp_addr;
              ue_ip;
              pdrs = List.rev !pdrs;
              fars = List.rev !fars;
            }
    end
    else if mt = msg_session_establishment_response then begin
      let cause = ref 0 and up_seid = ref 0L in
      ignore
        (fold_ies c
           (fun () ty sub ->
             if ty = ie_cause then cause := get_u8 sub
             else if ty = ie_fseid then up_seid := get_u64 sub)
           ());
      Establishment_response { cause = !cause; up_seid = !up_seid }
    end
    else if mt = msg_session_deletion_request then Deletion_request
    else if mt = msg_session_deletion_response then begin
      let cause = ref 0 in
      ignore (fold_ies c (fun () ty sub -> if ty = ie_cause then cause := get_u8 sub) ());
      Deletion_response { cause = !cause }
    end
    else fail "unsupported message type %d" mt
  in
  { seid; seq; payload }
