(** Ethernet II framing: MAC addresses and the 14-byte header. *)

(** A MAC address in the low 48 bits. *)
type mac = int

val header_bytes : int
val ethertype_ipv4 : int
val ethertype_arp : int

type t = { dst : mac; src : mac; ethertype : int }

(** Parse ["aa:bb:cc:dd:ee:ff"]. @raise Invalid_argument on malformed input. *)
val mac_of_string : string -> mac

val mac_to_string : mac -> string

(** Encode the header at [off] (14 bytes). *)
val encode : t -> Bytes.t -> off:int -> unit

val decode : Bytes.t -> off:int -> t

(** Big-endian 16-bit accessors shared by the other header codecs. *)
val put_u16 : Bytes.t -> int -> int -> unit

val get_u16 : Bytes.t -> int -> int

val put_mac : Bytes.t -> int -> mac -> unit
val get_mac : Bytes.t -> int -> mac
