(* RFC 1071 Internet checksum (16-bit ones'-complement sum). *)

let sum_bytes ?(acc = 0) buf ~off ~len =
  let acc = ref acc in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    acc := !acc + ((Char.code (Bytes.get buf !i) lsl 8) lor Char.code (Bytes.get buf (!i + 1)));
    i := !i + 2
  done;
  if !i < stop then acc := !acc + (Char.code (Bytes.get buf !i) lsl 8);
  !acc

let fold_carries sum =
  let s = ref sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  !s

let finish sum = lnot (fold_carries sum) land 0xFFFF

let of_bytes buf ~off ~len = finish (sum_bytes buf ~off ~len)

(* Incremental update per RFC 1624: new = ~(~old + ~m + m'). *)
let update ~old_csum ~old_field ~new_field =
  let not16 v = lnot v land 0xFFFF in
  let sum = not16 old_csum + not16 old_field + new_field in
  not16 (fold_carries sum)

let valid buf ~off ~len = fold_carries (sum_bytes buf ~off ~len) = 0xFFFF
