(** RFC 1071 Internet checksum and RFC 1624 incremental update. *)

(** Ones'-complement sum of a byte range, foldable into further sums via
    [~acc]. *)
val sum_bytes : ?acc:int -> Bytes.t -> off:int -> len:int -> int

(** Fold carries into 16 bits. *)
val fold_carries : int -> int

(** Complement a folded sum into the wire checksum value. *)
val finish : int -> int

(** Checksum of a byte range (with the checksum field zeroed by the
    caller). *)
val of_bytes : Bytes.t -> off:int -> len:int -> int

(** [update ~old_csum ~old_field ~new_field] recomputes a checksum after one
    16-bit field changed, without touching the rest of the data. *)
val update : old_csum:int -> old_field:int -> new_field:int -> int

(** [valid buf ~off ~len] checks a range that includes its checksum field. *)
val valid : Bytes.t -> off:int -> len:int -> bool
