lib/memsim/layout.ml: List String
