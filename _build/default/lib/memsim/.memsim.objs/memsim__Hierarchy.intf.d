lib/memsim/hierarchy.mli: Cache Memstats
