lib/memsim/memstats.mli: Format
