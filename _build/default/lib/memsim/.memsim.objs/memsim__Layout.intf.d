lib/memsim/layout.mli:
