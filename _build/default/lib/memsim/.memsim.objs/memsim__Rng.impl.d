lib/memsim/rng.ml: Array Int64
