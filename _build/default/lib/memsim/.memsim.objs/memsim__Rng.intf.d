lib/memsim/rng.mli:
