lib/memsim/cache.mli: Format
