lib/memsim/cache.ml: Array Fmt
