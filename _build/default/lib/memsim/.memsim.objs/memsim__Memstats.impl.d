lib/memsim/memstats.ml: Fmt
