lib/memsim/hierarchy.ml: Array Cache List Memstats
