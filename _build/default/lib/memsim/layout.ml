(* Bump allocator for the simulated physical address space, with labelled
   regions so that tests and metrics can classify an address. *)

type region = { label : string; start : int; mutable stop : int }

type t = {
  mutable cursor : int;
  mutable regions : region list;  (* newest first *)
}

let base_addr = 0x10000

let create () = { cursor = base_addr; regions = [] }

let align_up v align =
  if align <= 0 then invalid_arg "Layout: align must be positive";
  (v + align - 1) / align * align

let alloc t ?(align = 8) ~label ~bytes () =
  if bytes < 0 then invalid_arg "Layout.alloc: negative size";
  let start = align_up t.cursor align in
  t.cursor <- start + bytes;
  (match t.regions with
  | { label = l; _ } :: _ when String.equal l label ->
      (* Extend the current region when allocations share a label. *)
      (List.hd t.regions).stop <- t.cursor
  | _ -> t.regions <- { label; start; stop = t.cursor } :: t.regions);
  start

(* Allocate [count] objects of exactly [stride] bytes each; object [i] lives
   at [base + i * stride]. The caller chooses the stride — state arenas use
   this to realise packed vs. unpacked per-flow layouts. *)
let alloc_array t ?(align = 64) ~label ~stride ~count () =
  if stride <= 0 || count < 0 then invalid_arg "Layout.alloc_array";
  alloc t ~align ~label ~bytes:(stride * count) ()

let region_of t addr =
  let rec go = function
    | [] -> None
    | r :: rest -> if addr >= r.start && addr < r.stop then Some r.label else go rest
  in
  go t.regions

let used_bytes t = t.cursor - base_addr

let regions t =
  List.rev_map (fun r -> (r.label, r.start, r.stop - r.start)) t.regions
