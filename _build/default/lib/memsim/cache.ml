(* A single set-associative cache level with LRU replacement.

   The cache tracks line *presence* only; data contents live on the OCaml
   side of the simulation. Addresses are byte addresses in the simulated
   physical address space; internally everything is keyed by line number
   (addr lsr line_bits). *)

type t = {
  name : string;
  line_bits : int;
  nsets : int;
  assoc : int;
  tags : int array;   (* nsets * assoc; -1 = invalid, otherwise line number *)
  stamp : int array;  (* recency timestamp, parallel to [tags] *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable installs : int;
}

let log2_exact name n =
  if n <= 0 then invalid_arg (name ^ ": must be positive");
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
  let b = go 0 n in
  if 1 lsl b <> n then invalid_arg (name ^ ": must be a power of two");
  b

let create ~name ~size_bytes ~assoc ~line_bytes =
  let line_bits = log2_exact "line_bytes" line_bytes in
  if assoc <= 0 then invalid_arg "Cache.create: assoc must be positive";
  if size_bytes mod (assoc * line_bytes) <> 0 then
    invalid_arg "Cache.create: size not divisible by assoc * line_bytes";
  let nsets = size_bytes / (assoc * line_bytes) in
  if nsets <= 0 then invalid_arg "Cache.create: zero sets";
  {
    name;
    line_bits;
    nsets;
    assoc;
    tags = Array.make (nsets * assoc) (-1);
    stamp = Array.make (nsets * assoc) 0;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    installs = 0;
  }

let name t = t.name
let line_bytes t = 1 lsl t.line_bits
let nsets t = t.nsets
let assoc t = t.assoc
let capacity_bytes t = nsets t * t.assoc * line_bytes t

let line_of_addr t addr = addr lsr t.line_bits

let set_of_line t line = line mod t.nsets

let base t line = set_of_line t line * t.assoc

(* Find the way holding [line] in its set, or -1. *)
let find_way t line =
  let b = base t line in
  let rec go i =
    if i = t.assoc then -1
    else if t.tags.(b + i) = line then b + i
    else go (i + 1)
  in
  go 0

let contains_line t line = find_way t line >= 0

let contains t addr = contains_line t (line_of_addr t addr)

let touch t idx =
  t.tick <- t.tick + 1;
  t.stamp.(idx) <- t.tick

(* [access_line] performs a tag check and updates recency on hit. *)
let access_line t line =
  let way = find_way t line in
  if way >= 0 then begin
    t.hits <- t.hits + 1;
    touch t way;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

let access t addr = access_line t (line_of_addr t addr)

(* Install a line, evicting the LRU way if the set is full. Returns the line
   number of the victim, if a valid line was evicted. *)
let install_line t line =
  let b = base t line in
  let existing = find_way t line in
  if existing >= 0 then begin
    touch t existing;
    None
  end
  else begin
    t.installs <- t.installs + 1;
    (* Prefer an invalid way; otherwise evict the least recently used. *)
    let victim = ref b in
    let found_invalid = ref false in
    for i = 0 to t.assoc - 1 do
      let idx = b + i in
      if (not !found_invalid) && t.tags.(idx) = -1 then begin
        victim := idx;
        found_invalid := true
      end
      else if (not !found_invalid) && t.stamp.(idx) < t.stamp.(!victim) then
        victim := idx
    done;
    let evicted =
      if t.tags.(!victim) = -1 then None
      else begin
        t.evictions <- t.evictions + 1;
        Some t.tags.(!victim)
      end
    in
    t.tags.(!victim) <- line;
    touch t !victim;
    evicted
  end

let install t addr = install_line t (line_of_addr t addr)

let invalidate_line t line =
  let way = find_way t line in
  if way >= 0 then t.tags.(way) <- -1

let invalidate t addr = invalidate_line t (line_of_addr t addr)

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  t.tick <- 0

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.installs <- 0

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let installs t = t.installs

let resident_lines t =
  Array.fold_left (fun acc tag -> if tag >= 0 then acc + 1 else acc) 0 t.tags

let pp ppf t =
  Fmt.pf ppf "%s: %d sets x %d ways x %dB (%d KiB), hits=%d misses=%d evict=%d"
    t.name (nsets t) t.assoc (line_bytes t)
    (capacity_bytes t / 1024)
    t.hits t.misses t.evictions
