(* Deterministic splitmix64 PRNG.

   All simulations in this repository must be reproducible run-to-run, so we
   avoid [Random] (whose default state is shared and seedable globally) in
   favour of explicitly threaded generator values. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Fisher-Yates shuffle, in place. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t = create (Int64.to_int (next_int64 t))
