(** Deterministic splitmix64 pseudo-random number generator.

    Every stochastic component of the simulator threads one of these values
    explicitly so that workloads and experiments are reproducible. *)

type t

(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** Next raw 64-bit value. *)
val next_int64 : t -> int64

(** [bits t] is a non-negative 62-bit integer. *)
val bits : t -> int

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] (inclusive). *)
val int_in_range : t -> lo:int -> hi:int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

val bool : t -> bool

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [split t] derives an independent generator (advances [t]). *)
val split : t -> t
