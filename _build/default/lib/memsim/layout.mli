(** Bump allocator for the simulated physical address space.

    State structures (flow tables, per-flow arenas, packet pools) allocate
    their simulated addresses here; labelled regions let tests and metrics
    classify an address back to the structure that owns it. *)

type t

val create : unit -> t

(** First address handed out; everything below is unmapped. *)
val base_addr : int

(** [alloc t ~align ~label ~bytes ()] reserves [bytes] bytes aligned to
    [align] (default 8) and returns the start address. *)
val alloc : t -> ?align:int -> label:string -> bytes:int -> unit -> int

(** [alloc_array t ~align ~label ~stride ~count ()] reserves [count] objects
    of exactly [stride] bytes; object [i] lives at [result + i * stride].
    Default alignment 64 (one cache line). *)
val alloc_array :
  t -> ?align:int -> label:string -> stride:int -> count:int -> unit -> int

(** Label of the region containing [addr], if mapped. *)
val region_of : t -> int -> string option

val used_bytes : t -> int

(** All regions as [(label, start, size)], oldest first. *)
val regions : t -> (string * int * int) list
