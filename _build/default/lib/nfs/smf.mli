(** SMF-lite: the session management function's N4 side. Builds PFCP
    establishment/deletion requests matching the UPF's PDR shape, drives
    them against a UPF's N4 agent, and tracks established sessions. *)

exception Smf_error of string

type established = {
  up_seid : int64;
  e_ue_ip : Netcore.Ipv4.addr;
  e_teid : int32;
}

type t

val create : ?smf_addr:Netcore.Ipv4.addr -> unit -> t
val n_established : t -> int
val sessions : t -> established list

(** The Create PDR / Create FAR set for a session with [n_pdrs] rules. *)
val rules :
  n_pdrs:int -> teid:int32 -> ran_ip:Netcore.Ipv4.addr ->
  Netcore.Pfcp.create_pdr list * Netcore.Pfcp.create_far list

(** An encoded Session Establishment Request. *)
val establishment_request :
  t -> ue_ip:Netcore.Ipv4.addr -> teid:int32 -> n_pdrs:int ->
  ran_ip:Netcore.Ipv4.addr -> string

(** Full establishment exchange; [Error cause] on rejection.
    @raise Smf_error on protocol violations. *)
val establish :
  t -> Upf.t -> ue_ip:Netcore.Ipv4.addr -> teid:int32 -> ran_ip:Netcore.Ipv4.addr ->
  (int64, int) result

(** Full deletion exchange; returns the cause code. *)
val delete : t -> Upf.t -> up_seid:int64 -> int
