(* Service function chains (§VII-B): LB -> NAT -> NM -> FW [-> FW' -> FW'']
   compositions of length 2-6, following the paper's setup ("for lengths
   greater than 4, we add FW to the SFC with different firewall policies").

   With [packed = true] the per-flow states of all chained NFs for one flow
   are co-located in a single packed arena entry (data packing, §VI-B);
   redundant-matching removal is a compile option ({!Gunfu.Compiler.opts}). *)

open Gunfu
open Structures

(* The third policy variant for position 6. *)
let egress_policy =
  {
    Firewall.rules =
      [
        {
          Firewall.src_ip_mask = (0l, 0l);
          dst_port_range = (6000, 6063);
          proto = Some Netcore.Ipv4.proto_udp;
          rule_verdict = Firewall.Deny;
        };
      ];
    default = Firewall.Accept;
  }

type t = {
  length : int;
  packed : bool;
  lb : Lb.t;
  nat : Nat.t;
  nm : Monitor.t option;
  fws : Firewall.t list;
}

let member_sizes length =
  let base = [ ("lb", Lb.state_bytes); ("nat", Nat.state_bytes) ] in
  let base = if length >= 3 then base @ [ ("nm", Monitor.state_bytes) ] else base in
  let fw_names = [ "fw1"; "fw2"; "fw3" ] in
  let n_fw = max 0 (length - 3) in
  base @ List.filteri (fun i _ -> i < n_fw) (List.map (fun n -> (n, Firewall.state_bytes)) fw_names)

let create layout ~length ~packed ~n_flows () =
  if length < 2 || length > 6 then invalid_arg "Sfc.create: length must be in 2..6";
  let group =
    if packed then
      Some
        (State_arena.create_group layout ~label:"sfc.per_flow"
           ~members:(member_sizes length) ~count:n_flows ())
    else None
  in
  let arena_for member =
    Option.map (fun g -> State_arena.view g ~member) group
  in
  let lb = Lb.create layout ~name:"lb" ?arena:(arena_for "lb") ~n_flows () in
  let nat = Nat.create layout ~name:"nat" ?arena:(arena_for "nat") ~n_flows () in
  let nm =
    if length >= 3 then Some (Monitor.create layout ~name:"nm" ?arena:(arena_for "nm") ~n_flows ())
    else None
  in
  let n_fw = max 0 (length - 3) in
  let fw_policies = [ Firewall.default_policy; Firewall.strict_policy; egress_policy ] in
  let fws =
    List.filteri (fun i _ -> i < n_fw) fw_policies
    |> List.mapi (fun i policy ->
           let name = Printf.sprintf "fw%d" (i + 1) in
           Firewall.create layout ~name ?arena:(arena_for name) ~policy ~n_flows ())
  in
  { length; packed; lb; nat; nm; fws }

let populate t flows =
  Lb.populate t.lb flows;
  Nat.populate t.nat flows;
  Option.iter (fun nm -> Monitor.populate nm flows) t.nm;
  List.iter (fun fw -> Firewall.populate fw flows) t.fws

let units t =
  [ Lb.unit t.lb; Nat.unit t.nat ]
  @ (match t.nm with Some nm -> [ Monitor.unit nm ] | None -> [])
  @ List.map Firewall.unit t.fws

let program ?(opts = Compiler.default_opts) t =
  Nf_unit.compile ~opts ~name:(Printf.sprintf "sfc%d" t.length) (units t)
