lib/nfs/nat.ml: Action Array Classifier Compiler Event Exec_ctx Gunfu Int32 Int64 Lazy Memsim Netcore Nf_common Nf_unit Nfc Nftask Prefetch Spec Sref State_arena Structures
