lib/nfs/classifier.ml: Action Compiler Cuckoo Event Exec_ctx Gunfu Int64 Lazy List Netcore Nf_common Nftask Prefetch Printf Spec Sref Structures
