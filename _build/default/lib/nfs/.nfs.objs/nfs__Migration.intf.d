lib/nfs/migration.mli: Monitor Nat Netcore
