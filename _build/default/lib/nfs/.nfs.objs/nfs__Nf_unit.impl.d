lib/nfs/nf_unit.ml: Compiler Gunfu List Spec
