lib/nfs/nat.mli: Classifier Compiler Gunfu Lazy Memsim Netcore Nf_unit Nfc Program Spec Sref Structures
