lib/nfs/firewall.mli: Classifier Compiler Gunfu Lazy Memsim Netcore Nf_unit Program Spec Structures
