lib/nfs/smf.ml: Int32 Int64 List Netcore Traffic Upf
