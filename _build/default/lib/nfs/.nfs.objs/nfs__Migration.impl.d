lib/nfs/migration.ml: Array Buffer Char Classifier Hashtbl Int32 Int64 List Monitor Nat Netcore Option String Structures
