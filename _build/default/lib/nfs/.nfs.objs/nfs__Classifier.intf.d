lib/nfs/classifier.mli: Compiler Gunfu Lazy Memsim Nftask Spec Structures
