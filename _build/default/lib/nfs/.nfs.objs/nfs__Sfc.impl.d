lib/nfs/sfc.ml: Compiler Firewall Gunfu Lb List Monitor Nat Netcore Nf_unit Option Printf State_arena Structures
