lib/nfs/nf_unit.mli: Compiler Gunfu Program Spec
