lib/nfs/upf.ml: Action Array Classifier Compiler Event Exec_ctx Gunfu Hashtbl Int32 Int64 Lazy List Mdi_tree Netcore Nf_common Nf_unit Nftask Prefetch Spec Sref State_arena Structures Traffic
