lib/nfs/nf_common.mli: Exec_ctx Gunfu Nftask Structures
