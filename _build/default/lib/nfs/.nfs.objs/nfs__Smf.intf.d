lib/nfs/smf.mli: Netcore Upf
