lib/nfs/catalog.ml: Array Compiler Filename Firewall Fmt Fun Gunfu Hashtbl Lb List Monitor Nat Netcore Nf_unit Option Program Spec String Sys
