lib/nfs/monitor.ml: Action Array Classifier Compiler Event Gunfu Lazy Netcore Nf_common Nf_unit Nftask Prefetch Spec State_arena Structures
