lib/nfs/lb.ml: Action Array Classifier Compiler Event Gunfu Int32 Lazy Maglev Netcore Nf_common Nf_unit Nftask Prefetch Spec State_arena Structures
