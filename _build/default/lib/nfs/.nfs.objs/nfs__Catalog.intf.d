lib/nfs/catalog.mli: Compiler Gunfu Memsim Netcore Program Spec
