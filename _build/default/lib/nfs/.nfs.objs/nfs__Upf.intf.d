lib/nfs/upf.mli: Classifier Compiler Gunfu Hashtbl Lazy Memsim Netcore Nf_unit Program Spec Structures Traffic
