lib/nfs/firewall.ml: Action Array Classifier Compiler Event Gunfu Int32 Lazy List Netcore Nf_common Nf_unit Prefetch Spec State_arena Structures
