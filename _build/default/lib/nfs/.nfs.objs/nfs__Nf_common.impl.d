lib/nfs/nf_common.ml: Exec_ctx Gunfu Netcore Nftask Sref State_arena Structures
