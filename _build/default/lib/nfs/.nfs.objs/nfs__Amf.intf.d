lib/nfs/amf.mli: Classifier Compiler Gunfu Lazy Memsim Nf_unit Program Spec Structures Traffic
