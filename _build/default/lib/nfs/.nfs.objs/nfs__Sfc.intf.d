lib/nfs/sfc.mli: Compiler Firewall Gunfu Lb Memsim Monitor Nat Netcore Nf_unit Program
