(* Shared helpers for NFAction bodies: charging packet / per-flow / sub-flow
   accesses against the simulated hierarchy with the right state class. *)

open Gunfu
open Structures

let packet_read ctx (task : Nftask.t) ~bytes =
  match task.Nftask.packet with
  | Some p when p.Netcore.Packet.sim_addr >= 0 ->
      Exec_ctx.read ctx ~cls:Sref.Packet_state ~addr:p.Netcore.Packet.sim_addr ~bytes
  | Some _ | None -> ()

let packet_write ctx (task : Nftask.t) ~bytes =
  match task.Nftask.packet with
  | Some p when p.Netcore.Packet.sim_addr >= 0 ->
      Exec_ctx.write ctx ~cls:Sref.Packet_state ~addr:p.Netcore.Packet.sim_addr ~bytes
  | Some _ | None -> ()

let matched_exn (task : Nftask.t) name =
  if task.Nftask.matched < 0 then
    failwith (name ^ ": data action executed without a match result");
  task.Nftask.matched

let per_flow_read ctx (task : Nftask.t) arena ~name =
  let idx = matched_exn task name in
  Exec_ctx.read ctx ~cls:Sref.Per_flow ~addr:(State_arena.addr arena idx)
    ~bytes:(State_arena.entry_bytes arena);
  idx

let per_flow_write ctx (task : Nftask.t) arena ~name =
  let idx = matched_exn task name in
  Exec_ctx.write ctx ~cls:Sref.Per_flow ~addr:(State_arena.addr arena idx)
    ~bytes:(State_arena.entry_bytes arena);
  idx

let sub_flow_read ctx (task : Nftask.t) arena ~name =
  if task.Nftask.sub_matched < 0 then
    failwith (name ^ ": data action executed without a sub-flow match");
  let idx = task.Nftask.sub_matched in
  Exec_ctx.read ctx ~cls:Sref.Sub_flow ~addr:(State_arena.addr arena idx)
    ~bytes:(State_arena.entry_bytes arena);
  idx
