(** 5G User Plane Function.

    Downlink handler (Fig 6(f)): UE-IP cuckoo classifier -> PFCP session
    (per-flow) -> MDI-tree PDR matcher (sub-flow) -> FAR application with
    GTP-U encapsulation towards the RAN. PDR trees form a forest: one rule
    shape, session-private node addresses — every lookup pointer-chases
    through that session's own cache lines (EXP A's access pattern).

    Uplink handler (extension beyond the paper's downlink evaluation):
    GTP-U TEID classifier -> session validation -> decapsulation. *)

open Gunfu

val pdr_spec : Spec.module_spec Lazy.t
val encap_spec : Spec.module_spec Lazy.t
val decap_spec : Spec.module_spec Lazy.t

type t = {
  name : string;
  classifier : Classifier.t;  (** downlink: UE IP -> PFCP session *)
  uplink_classifier : Classifier.t;  (** uplink: GTP-U TEID -> PFCP session *)
  session_arena : Structures.State_arena.t;
  pdr_arena : Structures.State_arena.t;
  forest : Structures.Mdi_tree.Forest.forest;
  sessions : Traffic.Mgw.session array;
  n_pdrs : int;
  upf_n3_addr : Netcore.Ipv4.addr;
  ran_addrs : Netcore.Ipv4.addr array;
  mutable encapsulated : int;
  mutable decapsulated : int;
  mutable n_active : int;  (** installed sessions (slots 0..n_active-1) *)
  seid_table : (int64, Netcore.Ipv4.addr) Hashtbl.t;  (** UP F-SEID -> UE IP *)
}

val session_bytes : int
val pdr_bytes : int

(** The PDR rule set shared by all sessions (port-partitioning MGW shape). *)
val pdr_rules : n_pdrs:int -> Structures.Mdi_tree.rule list

(** @raise Invalid_argument on an empty session array. *)
val create :
  Memsim.Layout.t -> name:string -> sessions:Traffic.Mgw.session array -> n_pdrs:int ->
  unit -> t

(** A UPF with pre-sized capacity and no installed sessions — sessions
    arrive at runtime over PFCP. @raise Invalid_argument when
    [capacity <= 0]. *)
val create_empty :
  Memsim.Layout.t -> name:string -> capacity:int -> n_pdrs:int -> unit -> t

(** Fill both classifiers (UE IP and TEID keys). *)
val populate : t -> unit

(** {2 Runtime session management (the N4 agent)} *)

(** Install a session; [Error cause] with a PFCP cause code on duplicates
    or exhausted capacity. *)
val install_session :
  t -> ue_ip:Netcore.Ipv4.addr -> teid:int32 -> (int, int) result

(** Remove a session by UE IP; [false] when absent. *)
val remove_session : t -> ue_ip:Netcore.Ipv4.addr -> bool

(** Whether a request's PDR set is expressible in this UPF's fixed
    per-session rule shape. *)
val pdrs_match_shape : t -> Netcore.Pfcp.create_pdr list -> bool

(** The UPF's N4 agent: decode a PFCP request, act on it, return the
    encoded response (malformed requests get a rejection response). *)
val handle_pfcp : t -> string -> string

val pdr_instance : t -> Compiler.instance
val encap_instance : t -> Compiler.instance
val decap_instance : t -> Compiler.instance

(** Downlink unit: classifier -> PDR matcher -> encapsulator. *)
val unit : t -> Nf_unit.t

val program : ?opts:Compiler.opts -> t -> Program.t

(** Uplink unit: TEID classifier -> decapsulator. *)
val uplink_unit : t -> Nf_unit.t

val uplink_program : ?opts:Compiler.opts -> t -> Program.t

(** Depth of the shared PDR tree (grows with [n_pdrs]). *)
val tree_depth : t -> int

(** {2 QoS enforcement (QER)} *)

val qer_spec : Spec.module_spec Lazy.t

type qos = {
  buckets : Structures.Token_bucket.t array;  (** one per session *)
  qer_arena : Structures.State_arena.t;
  mutable conformant : int;
  mutable policed : int;
}

(** Per-session downlink AMBR enforcement (token bucket per session). *)
val create_qos :
  Memsim.Layout.t -> t -> rate_bytes_per_sec:int -> burst_bytes:int ->
  freq_ghz:float -> qos

val qer_instance : t -> qos -> Compiler.instance

(** Downlink with policing: classifier -> QER -> PDR matcher -> encap. *)
val unit_with_qos : t -> qos -> Nf_unit.t

val program_with_qos : ?opts:Compiler.opts -> t -> qos -> Program.t
