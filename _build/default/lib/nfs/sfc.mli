(** Service function chains (§VII-B): LB -> NAT -> NM -> FW [-> FW' -> FW'']
    compositions of length 2-6. With [packed], the per-flow states of all
    chained NFs share one packed arena entry (data packing); redundant-
    matching removal is a {!Gunfu.Compiler.opts} choice at compile time. *)

open Gunfu

type t = {
  length : int;
  packed : bool;
  lb : Lb.t;
  nat : Nat.t;
  nm : Monitor.t option;  (** present from length 3 *)
  fws : Firewall.t list;  (** 0-3 firewalls with distinct policies *)
}

(** @raise Invalid_argument unless [2 <= length <= 6]. *)
val create : Memsim.Layout.t -> length:int -> packed:bool -> n_flows:int -> unit -> t

val populate : t -> Netcore.Flow.t array -> unit
val units : t -> Nf_unit.t list
val program : ?opts:Compiler.opts -> t -> Program.t
