(** 5G Access and Mobility Management Function — the state-complexity case
    (EXP B / Fig 12). The per-UE context exceeds 20 cache lines; each
    initial-registration message touches a different slice, declared by the
    fetching function so the runtime prefetches precisely it and data
    packing co-locates it. Handlers drive a real per-UE registration state
    machine. *)

open Gunfu

(** UE-context fields (name, bytes); ~1.3 KiB total. *)
val context_fields : (string * int) list

(** @raise Invalid_argument on unknown fields. *)
val field_bytes : string -> int

(** The context slice a message touches. *)
val message_fields : Traffic.Mgw.amf_msg -> string list

(** Handler compute weight (NAS crypto/codec work). *)
val message_cycles : Traffic.Mgw.amf_msg -> int

val spec : Spec.module_spec Lazy.t

type t = {
  name : string;
  classifier : Classifier.t;
  arena : Structures.State_arena.t;
  packed : bool;
  n_ues : int;
  progress : int array;  (** per-UE position in the registration sequence *)
  registrations : int array;  (** completed registrations per UE *)
  mutable protocol_errors : int;  (** out-of-order NAS messages seen *)
}

(** [packed] selects the data-packed context layout (§VI-B). *)
val create : Memsim.Layout.t -> name:string -> ?packed:bool -> n_ues:int -> unit -> t

val populate : t -> unit
val handler_instance : t -> Compiler.instance
val unit : t -> Nf_unit.t
val program : ?opts:Compiler.opts -> t -> Program.t

(** Cache lines a message's handler touches under this instance's layout. *)
val lines_per_message : t -> Traffic.Mgw.amf_msg -> int
