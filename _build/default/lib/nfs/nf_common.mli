(** Shared helpers for NFAction bodies: charging packet / per-flow /
    sub-flow accesses against the simulated hierarchy with the right state
    class. Reads of per-flow/sub-flow state return the match index they
    used. *)

open Gunfu

val packet_read : Exec_ctx.t -> Nftask.t -> bytes:int -> unit
val packet_write : Exec_ctx.t -> Nftask.t -> bytes:int -> unit

(** @raise Failure when no match result is present (a wiring bug). *)
val matched_exn : Nftask.t -> string -> int

val per_flow_read : Exec_ctx.t -> Nftask.t -> Structures.State_arena.t -> name:string -> int
val per_flow_write : Exec_ctx.t -> Nftask.t -> Structures.State_arena.t -> name:string -> int
val sub_flow_read : Exec_ctx.t -> Nftask.t -> Structures.State_arena.t -> name:string -> int
