(* Resolved NFState references (§IV-A).

   A reference names a region of the simulated address space plus the state
   class it belongs to. NFActions reach all state through references held in
   their NFTask — that indirection is the isolation the paper describes
   ("the action cannot access a memory address other than the one referenced
   in an NFTask"). *)

type state_class =
  | Match_state
  | Per_flow
  | Sub_flow
  | Packet_state
  | Control_state
  | Temp_state

let class_name = function
  | Match_state -> "match"
  | Per_flow -> "per_flow"
  | Sub_flow -> "sub_flow"
  | Packet_state -> "packet"
  | Control_state -> "control"
  | Temp_state -> "temp"

let class_of_name = function
  | "match" -> Some Match_state
  | "per_flow" -> Some Per_flow
  | "sub_flow" -> Some Sub_flow
  | "packet" -> Some Packet_state
  | "control" -> Some Control_state
  | "temp" -> Some Temp_state
  | _ -> None

type t = { cls : state_class; addr : int; bytes : int }

let make ~cls ~addr ~bytes =
  if bytes < 0 then invalid_arg "Sref.make: negative size";
  { cls; addr; bytes }

let pp ppf t = Fmt.pf ppf "%s@0x%x+%d" (class_name t.cls) t.addr t.bytes
