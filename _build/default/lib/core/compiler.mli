(** The director compiler (§VI): specifications + the NFAction
    implementation library -> an executable {!Program}.

    Passes: flattening of module FSMs along the NF-level wiring;
    redundant-matching removal (classifier instances repeating an earlier
    instance's key reuse its match result and disappear); and
    redundant-prefetch removal (a forward must-analysis strips prefetch
    targets already fetched on every path and not invalidated since). *)

exception Compile_error of string

(** A module instance: its spec, the action implementation per control
    state, the binding from spec state names to prefetch targets, and — for
    classifiers — the key kind they match on (equal key kinds make a later
    classifier redundant). *)
type instance = {
  i_name : string;
  i_spec : Spec.module_spec;
  i_actions : (string * Action.t) list;
  i_bindings : (string * Prefetch.target) list;
  i_key_kind : string option;
}

type opts = {
  match_removal : bool;
  prefetch_dedup : bool;
  prefetching : bool;  (** [false]: compile with empty prefetch policies *)
}

(** prefetching on, dedup on, match removal off. *)
val default_opts : opts

(** @raise Compile_error (or {!Spec.Spec_error}) on invalid specs, missing
    action implementations or missing prefetch bindings. *)
val compile : ?opts:opts -> name:string -> instance list -> Spec.nf_spec -> Program.t

(** Exposed for tests: the match-removal rewrite on the instance graph. *)
val remove_redundant_matching :
  instance list -> Spec.nf_spec -> instance list * Spec.nf_spec

(** Exposed for tests: the prefetch must-analysis; returns removed-target
    count. *)
val remove_redundant_prefetch : Program.cs_info array -> Fsm.t -> start:int -> int
