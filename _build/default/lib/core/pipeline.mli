(** The pipeline execution model (related work, §VIII): modules placed on
    different cores connected by software queues, per-packet RTC within
    each stage. Every inter-stage hop pays queue operations plus a
    cross-core cache transfer; steady-state throughput is the bottleneck
    stage's. Provided as a comparison baseline. *)

val queue_cycles : int
val queue_instrs : int
val transfer_cycles : int

(** [run stages source]: stage k's program runs on stage k's worker; the
    returned run carries the bottleneck stage's cycle count (stages overlap
    in steady state) and the sum of all stages' memory counters.
    @raise Invalid_argument on an empty stage list. *)
val run : ?label:string -> (Worker.t * Program.t) list -> Workload.source -> Metrics.run

val stage_count : (Worker.t * Program.t) list -> int
