(* The director (§III, Fig 4): orchestration and control plane. It holds
   the specification registry, generates configuration templates from
   module parameters, compiles NFs, deploys them onto per-core runtimes and
   exchanges operational statistics with the runtime agents.

   The runtime agent's side of the protocol is deliberately in-process:
   deployments hold direct references to their workers. *)

exception Director_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Director_error s)) fmt

type config = (string * string) list

(* Builds the per-core data plane from an operator-filled configuration:
   instantiates substrate state on the worker and returns the compiled
   program plus the core's traffic slice. *)
type builder =
  config -> Worker.t -> core:int -> Program.t * Workload.source

type deployment = {
  d_name : string;
  d_platform : Platform.t;
  mutable d_config : config;
  d_builder : builder;
  mutable d_runs : Metrics.run list;  (* operational statistics *)
}

type t = {
  mutable modules : Spec.module_spec list;
  mutable nfs : Spec.nf_spec list;
  mutable deployments : deployment list;
}

let create () = { modules = []; nfs = []; deployments = [] }

let register_module t spec =
  Spec.validate_module spec;
  if List.exists (fun m -> m.Spec.m_name = spec.Spec.m_name) t.modules then
    fail "module %s already registered" spec.Spec.m_name;
  t.modules <- spec :: t.modules

let register_nf t nf =
  Spec.validate_nf nf ~known_modules:(List.map (fun m -> m.Spec.m_name) t.modules);
  t.nfs <- nf :: t.nfs

let find_module t name = List.find_opt (fun m -> m.Spec.m_name = name) t.modules
let find_nf t name = List.find_opt (fun n -> n.Spec.n_name = name) t.nfs

(* Configuration generator (§III): the template an operator must fill —
   the union of the parameters of every module the NF instantiates. *)
let config_template t nf_name =
  match find_nf t nf_name with
  | None -> fail "unknown NF %s" nf_name
  | Some nf ->
      List.concat_map
        (fun (_, mtype) ->
          match find_module t mtype with
          | None -> fail "NF %s uses unregistered module %s" nf_name mtype
          | Some m -> m.Spec.m_parameters)
        nf.Spec.n_modules
      |> List.sort_uniq compare
      |> List.map (fun p -> (p, ""))

let validate_config template config =
  List.iter
    (fun (key, _) ->
      if not (List.mem_assoc key config) then fail "configuration missing parameter %s" key)
    template

(* Deploy: start per-core runtimes and hand each its configuration. *)
let deploy t ~name ~cores ?(cfg = Worker.default_cfg) ~config ~builder () =
  if List.exists (fun d -> d.d_name = name) t.deployments then
    fail "deployment %s already exists" name;
  let d =
    {
      d_name = name;
      d_platform = Platform.create ~cfg ~cores ();
      d_config = config;
      d_builder = builder;
      d_runs = [];
    }
  in
  t.deployments <- d :: t.deployments;
  d

(* Dynamic reconfiguration (§III: "initialization and dynamic
   configuration"): the director pushes a new configuration to the
   deployment's runtime agents; it takes effect on the next run. *)
let update_config (d : deployment) config = d.d_config <- config

let current_config (d : deployment) = d.d_config

type exec_model = Interleaved of int | Run_to_completion

(* Run the deployment under an execution model; runtime agents report their
   statistics back to the director. *)
let run (d : deployment) model =
  let setup w core = d.d_builder d.d_config w ~core in
  let runs =
    match model with
    | Interleaved n_tasks -> Platform.run_interleaved d.d_platform ~n_tasks ~setup
    | Run_to_completion -> Platform.run_rtc d.d_platform ~setup
  in
  d.d_runs <- d.d_runs @ runs;
  Metrics.merge_parallel runs

let stats (d : deployment) = d.d_runs

let report ppf t =
  List.iter
    (fun d ->
      Fmt.pf ppf "deployment %s (%d cores):@." d.d_name (Platform.cores d.d_platform);
      List.iter (fun r -> Fmt.pf ppf "  %a@." Metrics.pp_row r) d.d_runs)
    t.deployments
