(** The per-packet run-to-completion baseline (§II-B): the execution model
    of BESS / FastClick / L25GC / Free5GC. Each packet runs start-to-finish
    with no yielding; every state access demand-fetches and stalls for the
    full latency of whatever level serves it. Executes the same compiled
    {!Program} (prefetch policies ignored), so comparisons isolate exactly
    the execution model. *)

val run : ?label:string -> Worker.t -> Program.t -> Workload.source -> Metrics.run
