(** The director (§III, Fig 4): orchestration and control plane — the
    specification registry, configuration-template generation, compilation
    and deployment onto per-core runtimes, and the exchange of operational
    statistics with runtime agents. *)

exception Director_error of string

type config = (string * string) list

(** Builds the per-core data plane from an operator-filled configuration. *)
type builder = config -> Worker.t -> core:int -> Program.t * Workload.source

type deployment

type t

val create : unit -> t

(** @raise Director_error on duplicates; @raise Spec.Spec_error on invalid
    specs. *)
val register_module : t -> Spec.module_spec -> unit

val register_nf : t -> Spec.nf_spec -> unit
val find_module : t -> string -> Spec.module_spec option
val find_nf : t -> string -> Spec.nf_spec option

(** The template an operator must fill: the union of the parameters of
    every module the NF instantiates. @raise Director_error on unknown
    NFs. *)
val config_template : t -> string -> config

(** @raise Director_error when a template parameter is missing. *)
val validate_config : config -> config -> unit

(** Start per-core runtimes holding the configuration.
    @raise Director_error on duplicate deployment names. *)
val deploy :
  t -> name:string -> cores:int -> ?cfg:Worker.cfg -> config:config ->
  builder:builder -> unit -> deployment

(** Dynamic reconfiguration: push a new configuration to the runtime
    agents; takes effect on the next {!run}. *)
val update_config : deployment -> config -> unit

val current_config : deployment -> config

type exec_model = Interleaved of int | Run_to_completion

(** Run under an execution model; runtime agents report statistics back.
    Returns the merged cross-core run. *)
val run : deployment -> exec_model -> Metrics.run

(** All statistics reported so far (one entry per core per run). *)
val stats : deployment -> Metrics.run list

val report : Format.formatter -> t -> unit
