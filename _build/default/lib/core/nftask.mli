(** NFTask (§V, Fig 9a): the lightweight execution environment of one
    function stream — all context needed to process one packet. Fields are
    deliberately public: the scheduler, the compiler-generated actions and
    the NF implementations all manipulate them directly, like the C struct
    of the paper. *)

(** The cache-management P-state: has the pending action's NFState been
    prefetched? *)
type p_state =
  | P_none  (** no prefetch issued yet *)
  | P_issued  (** fills in flight; re-check before running *)
  | P_ready  (** state resident (or nothing to fetch); may run *)

(** Temporaries persisting between the NFActions of one packet. *)
type temps = {
  mutable key : int64;  (** flow key being matched *)
  mutable h1 : int;  (** primary cuckoo bucket *)
  mutable h2 : int;  (** alternate cuckoo bucket *)
  mutable cursor : int;  (** MDI tree node during a walk *)
  mutable regs : int array;  (** NF-C temporaries *)
}

type t = {
  id : int;
  mutable cs : int;  (** current control-logic state *)
  mutable event : Event.t;  (** event driving the next transition *)
  mutable packet : Netcore.Packet.t option;
  mutable aux : int;  (** non-packet input, e.g. the AMF message code *)
  mutable flow_hint : int;  (** flow/session/UE index; -1 unknown *)
  mutable matched : int;  (** per-flow index from matching; -1 none *)
  mutable sub_matched : int;  (** sub-flow index; -1 none *)
  mutable match_addrs : (int * int) list;
      (** (addr, bytes) blocks the next match action will read *)
  mutable pending_blocks : (int * int) list;
      (** blocks resolved by the last Fetch step — what [p_state] refers to *)
  mutable p_state : p_state;
  mutable active : bool;  (** [false]: free slot awaiting work *)
  mutable start_clock : int;  (** cycle the work item was loaded (latency) *)
  temps : temps;
}

val create : int -> t

(** Load a new unit of work (Algorithm 1 lines 4/13): resets all per-packet
    context. *)
val load :
  t -> cs:int -> ?packet:Netcore.Packet.t -> ?aux:int -> ?flow_hint:int -> unit -> unit

val retire : t -> unit

(** @raise Invalid_argument when the task holds no packet. *)
val packet_exn : t -> Netcore.Packet.t
