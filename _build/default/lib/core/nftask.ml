(* NFTask (§V, Fig 9a): the lightweight execution environment of one
   function stream — all context needed to process one packet.

   Fields mirror the paper's struct: control state, pending event, the
   packet reference, resolved match/per-flow/sub-flow state references, the
   temporary-variable area the compiler allocates, and the P-state used by
   the cache-management logic to decide whether the next action's NFState
   has been prefetched. *)

type p_state =
  | P_none       (* no prefetch issued for the pending action's state *)
  | P_issued     (* prefetch in flight; re-check readiness before running *)
  | P_ready      (* state observed resident; action may run *)

(* Temporaries persisting between the NFActions of one packet (§IV-A,
   "temporary states"). The compiler of the paper collects these from NF-C
   sources; here they are a fixed record covering the needs of all shipped
   modules plus generic registers for NF-C programs. *)
type temps = {
  mutable key : int64;        (* flow key being matched *)
  mutable h1 : int;           (* primary cuckoo bucket *)
  mutable h2 : int;           (* alternate cuckoo bucket *)
  mutable cursor : int;       (* MDI tree node index during a walk *)
  mutable regs : int array;   (* NF-C temporaries *)
}

type t = {
  id : int;
  mutable cs : int;                       (* current control-logic state *)
  mutable event : Event.t;                (* event driving the next transition *)
  mutable packet : Netcore.Packet.t option;
  mutable aux : int;                      (* non-packet input, e.g. AMF message code *)
  mutable flow_hint : int;                (* generator's flow index; -1 unknown *)
  mutable matched : int;                  (* per-flow index from matching; -1 none *)
  mutable sub_matched : int;              (* sub-flow index; -1 none *)
  mutable match_addrs : (int * int) list; (* (addr, bytes) the next match action reads *)
  mutable pending_blocks : (int * int) list;
      (* blocks resolved by the last Fetch step; what p_state refers to *)
  mutable p_state : p_state;
  mutable active : bool;                  (* false = free slot awaiting a packet *)
  mutable start_clock : int;              (* cycle the work item was loaded *)
  temps : temps;
}

let create id =
  {
    id;
    cs = 0;
    event = Event.Packet_arrival;
    packet = None;
    aux = 0;
    flow_hint = -1;
    matched = -1;
    sub_matched = -1;
    match_addrs = [];
    pending_blocks = [];
    p_state = P_none;
    active = false;
    start_clock = 0;
    temps = { key = 0L; h1 = -1; h2 = -1; cursor = -1; regs = Array.make 8 0 };
  }

(* Load a new unit of work; performed by the scheduler's initialisation and
   re-initialisation steps (Algorithm 1, lines 4 and 13). *)
let load t ~cs ?packet ?(aux = 0) ?(flow_hint = -1) () =
  t.cs <- cs;
  t.event <- Event.Packet_arrival;
  t.packet <- packet;
  t.aux <- aux;
  t.flow_hint <- flow_hint;
  t.matched <- -1;
  t.sub_matched <- -1;
  t.match_addrs <- [];
  t.pending_blocks <- [];
  t.p_state <- P_none;
  t.active <- true;
  t.temps.key <- 0L;
  t.temps.h1 <- -1;
  t.temps.h2 <- -1;
  t.temps.cursor <- -1;
  Array.fill t.temps.regs 0 (Array.length t.temps.regs) 0

let retire t =
  t.active <- false;
  t.packet <- None

let packet_exn t =
  match t.packet with
  | Some p -> p
  | None -> invalid_arg "Nftask.packet_exn: task has no packet"
