lib/core/metrics.mli: Format Memsim Sref
