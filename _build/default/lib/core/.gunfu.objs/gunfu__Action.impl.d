lib/core/action.ml: Event Exec_ctx Fmt Nftask
