lib/core/metrics.ml: Array Exec_ctx Float Fmt List Memsim
