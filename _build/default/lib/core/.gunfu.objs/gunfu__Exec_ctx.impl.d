lib/core/exec_ctx.ml: Array Memsim Sref
