lib/core/program.mli: Action Event Format Fsm Prefetch
