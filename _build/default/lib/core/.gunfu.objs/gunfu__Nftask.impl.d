lib/core/nftask.ml: Array Event Netcore
