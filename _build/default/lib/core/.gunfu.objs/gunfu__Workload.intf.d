lib/core/workload.mli: Netcore Traffic
