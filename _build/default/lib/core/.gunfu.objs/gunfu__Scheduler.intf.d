lib/core/scheduler.mli: Metrics Program Worker Workload
