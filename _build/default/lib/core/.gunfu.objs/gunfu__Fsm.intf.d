lib/core/fsm.mli: Event
