lib/core/yaml_lite.mli:
