lib/core/platform.mli: Metrics Program Worker Workload
