lib/core/director.ml: Fmt List Metrics Platform Program Spec Worker Workload
