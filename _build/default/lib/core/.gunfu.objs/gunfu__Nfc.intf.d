lib/core/nfc.mli: Action Event Exec_ctx Format Nftask
