lib/core/spec.mli:
