lib/core/platform.ml: Array Memsim Rtc Scheduler Worker
