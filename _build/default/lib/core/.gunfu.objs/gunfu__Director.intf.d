lib/core/director.mli: Format Metrics Program Spec Worker Workload
