lib/core/event.ml: Fmt String
