lib/core/exec_ctx.mli: Memsim Sref
