lib/core/pipeline.ml: Action Event Exec_ctx List Metrics Netcore Nftask Program Worker Workload
