lib/core/sref.ml: Fmt
