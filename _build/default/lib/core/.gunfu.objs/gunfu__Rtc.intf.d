lib/core/rtc.mli: Metrics Program Worker Workload
