lib/core/rtc.ml: Action Event Exec_ctx Metrics Netcore Nftask Option Printf Program Worker Workload
