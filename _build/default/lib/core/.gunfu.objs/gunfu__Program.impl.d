lib/core/program.ml: Action Array Event Fmt Fsm Prefetch Printf
