lib/core/worker.mli: Exec_ctx Memsim Metrics
