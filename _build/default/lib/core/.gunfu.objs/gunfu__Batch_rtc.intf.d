lib/core/batch_rtc.mli: Metrics Program Worker Workload
