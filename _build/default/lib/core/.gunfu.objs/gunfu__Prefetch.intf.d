lib/core/prefetch.mli: Format Nftask Sref Structures
