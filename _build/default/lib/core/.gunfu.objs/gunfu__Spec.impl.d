lib/core/spec.ml: Fmt Hashtbl List Option String Yaml_lite
