lib/core/nfc.ml: Action Event Exec_ctx Fmt List Nftask String
