lib/core/fsm.ml: Array Event Hashtbl List Option Printf String
