lib/core/pipeline.mli: Metrics Program Worker Workload
