lib/core/worker.ml: Array Exec_ctx Memsim Metrics
