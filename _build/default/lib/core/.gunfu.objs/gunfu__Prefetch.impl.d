lib/core/prefetch.ml: Fmt List Netcore Nftask Sref State_arena String Structures
