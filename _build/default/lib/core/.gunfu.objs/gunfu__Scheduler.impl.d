lib/core/scheduler.ml: Action Array Event Exec_ctx Hashtbl List Metrics Netcore Nftask Option Prefetch Printf Program Worker Workload
