lib/core/workload.ml: Bytes Ethernet Flow Int32 Ipv4 L4 List Nas Netcore Packet Pcap Printf Traffic
