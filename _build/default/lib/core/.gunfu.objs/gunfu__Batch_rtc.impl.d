lib/core/batch_rtc.ml: Action Array Event Exec_ctx Fsm List Metrics Netcore Nftask Option Prefetch Printf Program Worker Workload
