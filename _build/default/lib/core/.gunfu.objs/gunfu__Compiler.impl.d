lib/core/compiler.ml: Action Array Fmt Fsm List Prefetch Program Spec
