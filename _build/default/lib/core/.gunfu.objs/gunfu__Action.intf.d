lib/core/action.mli: Event Exec_ctx Format Nftask
