lib/core/compiler.mli: Action Fsm Prefetch Program Spec
