lib/core/nftask.mli: Event Netcore
