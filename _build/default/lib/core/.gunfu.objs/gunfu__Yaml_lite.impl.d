lib/core/yaml_lite.ml: List String
