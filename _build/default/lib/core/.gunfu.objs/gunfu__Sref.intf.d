lib/core/sref.mli: Format
