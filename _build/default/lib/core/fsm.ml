(* Control-logic FSM (§IV-A, "Formalizing Execution Model as FSM"):
   CS is the set of control states, Δ : CS × E → CS the transition
   function. The fetching function F lives in {!Program} as per-state
   action/prefetch info; this module is the bare state graph. *)

type t = {
  names : string array;
  index : (string, int) Hashtbl.t;
  edges : (int, (string * int) list) Hashtbl.t;  (* cs -> (event key, cs') *)
}

module Builder = struct
  type b = {
    mutable b_names : string list;  (* reversed *)
    b_index : (string, int) Hashtbl.t;
    mutable b_edges : (int * string * int) list;
  }

  let create () = { b_names = []; b_index = Hashtbl.create 64; b_edges = [] }

  let add_state b name =
    match Hashtbl.find_opt b.b_index name with
    | Some i -> i
    | None ->
        let i = Hashtbl.length b.b_index in
        Hashtbl.add b.b_index name i;
        b.b_names <- name :: b.b_names;
        i

  let state b name = Hashtbl.find_opt b.b_index name

  (* Adding a duplicate (src, event) with a different destination is a spec
     error: Δ must be a function. *)
  let add_edge b ~src ~event ~dst =
    List.iter
      (fun (s, e, d) ->
        if s = src && String.equal e event && d <> dst then
          invalid_arg
            (Printf.sprintf "Fsm: non-deterministic transition from state %d on %s" src event))
      b.b_edges;
    if not (List.exists (fun (s, e, d) -> s = src && String.equal e event && d = dst) b.b_edges)
    then b.b_edges <- (src, event, dst) :: b.b_edges

  let build b =
    let names = Array.of_list (List.rev b.b_names) in
    let edges = Hashtbl.create (Array.length names) in
    List.iter
      (fun (s, e, d) ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt edges s) in
        Hashtbl.replace edges s ((e, d) :: cur))
      b.b_edges;
    { names; index = Hashtbl.copy b.b_index; edges }
end

let n_states t = Array.length t.names
let name t i = t.names.(i)
let index t name = Hashtbl.find_opt t.index name

let step t cs event =
  match Hashtbl.find_opt t.edges cs with
  | None -> None
  | Some outs ->
      let key = Event.to_key event in
      List.find_map (fun (e, d) -> if String.equal e key then Some d else None) outs

let successors t cs =
  Option.value ~default:[] (Hashtbl.find_opt t.edges cs) |> List.map snd

let edges t =
  Hashtbl.fold
    (fun src outs acc -> List.fold_left (fun acc (e, d) -> (src, e, d) :: acc) acc outs)
    t.edges []

let predecessors t cs =
  List.filter_map (fun (s, _, d) -> if d = cs then Some s else None) (edges t)

(* States with no outgoing edges are terminal. *)
let is_terminal t cs = successors t cs = []
