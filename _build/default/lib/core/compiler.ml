(* The director compiler (§VI): takes module/NF specifications plus the
   NFAction implementation library and produces an executable {!Program}.

   Passes:
   - flattening: module FSMs + NF-level wiring -> one global FSM;
   - redundant-matching removal (§VI-B): consecutive classifier instances
     that locate session state by the same key reuse the first instance's
     match result and are deleted from the chain;
   - redundant-prefetch removal (§VI-B): a forward must-analysis over the
     flattened FSM removes prefetch targets already fetched on every path
     to a control state (and not invalidated since). *)

exception Compile_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Compile_error s)) fmt

type instance = {
  i_name : string;
  i_spec : Spec.module_spec;
  i_actions : (string * Action.t) list;  (* control state -> action impl *)
  i_bindings : (string * Prefetch.target) list;  (* spec state name -> target *)
  i_key_kind : string option;  (* classifiers: what key they match on *)
}

type opts = {
  match_removal : bool;
  prefetch_dedup : bool;
  prefetching : bool;  (* false: compile with empty prefetch policies *)
}

let default_opts = { match_removal = false; prefetch_dedup = true; prefetching = true }

(* ----- redundant matching removal ----- *)

(* Returns the surviving instances and rewritten NF transitions. An
   instance is redundant when it is a classifier whose key kind already
   appeared earlier in the chain: its match result (the per-flow index in
   the NFTask) is still valid, so the instance's incoming transitions are
   rewired to its MATCH_SUCCESS successor. *)
let remove_redundant_matching instances (nf : Spec.nf_spec) =
  let order = List.map fst nf.Spec.n_modules in
  let inst_of name = List.find (fun i -> i.i_name = name) instances in
  let seen = ref [] in
  let redundant =
    List.filter
      (fun name ->
        match (inst_of name).i_key_kind with
        | None -> false
        | Some k ->
            if List.mem k !seen then true
            else begin
              seen := k :: !seen;
              false
            end)
      order
  in
  if redundant = [] then (instances, nf)
  else begin
    let success_target name =
      match
        List.find_opt
          (fun t -> t.Spec.src = name && t.Spec.event = "MATCH_SUCCESS")
          nf.Spec.n_transitions
      with
      | Some t -> t.Spec.dst
      | None -> fail "match removal: classifier %s has no MATCH_SUCCESS successor" name
    in
    (* Resolve chains of removed classifiers. *)
    let rec resolve dst =
      if List.mem dst redundant then resolve (success_target dst) else dst
    in
    let transitions =
      List.filter_map
        (fun t ->
          if List.mem t.Spec.src redundant then None
          else Some { t with Spec.dst = resolve t.Spec.dst })
        nf.Spec.n_transitions
    in
    let modules = List.filter (fun (n, _) -> not (List.mem n redundant)) nf.Spec.n_modules in
    let instances = List.filter (fun i -> not (List.mem i.i_name redundant)) instances in
    (instances, { nf with Spec.n_modules = modules; Spec.n_transitions = transitions })
  end

(* ----- flattening ----- *)

let qname inst cs = inst ^ "." ^ cs

(* Entry control state of an instance for a given event: target of its
   module's Start transition on that event; falls back to "packet", then to
   a unique Start transition (a module with a single entry accepts any
   upstream exit event — e.g. a data module entered directly after match
   removal rewired its classifier away). *)
let entry_of inst event =
  let find ev =
    List.find_opt
      (fun t -> t.Spec.src = Spec.start_state && t.Spec.event = ev)
      inst.i_spec.Spec.m_transitions
  in
  match find event with
  | Some t -> t.Spec.dst
  | None -> (
      match find "packet" with
      | Some t -> t.Spec.dst
      | None -> (
          match
            List.filter
              (fun t -> t.Spec.src = Spec.start_state)
              inst.i_spec.Spec.m_transitions
          with
          | [ t ] -> t.Spec.dst
          | _ -> fail "instance %s has no entry transition for event %s" inst.i_name event))

let flatten instances (nf : Spec.nf_spec) =
  let inst_of name =
    match List.find_opt (fun i -> i.i_name = name) instances with
    | Some i -> i
    | None -> fail "nf %s references missing instance %s" nf.Spec.n_name name
  in
  let b = Fsm.Builder.create () in
  let start = Fsm.Builder.add_state b "__start" in
  let done_cs = Fsm.Builder.add_state b "__done" in
  (* Add all real control states first so ids are stable. *)
  List.iter
    (fun inst ->
      List.iter
        (fun cs ->
          if cs <> Spec.start_state && cs <> Spec.end_state then
            ignore (Fsm.Builder.add_state b (qname inst.i_name cs)))
        (List.rev (Spec.control_states_of inst.i_spec)))
    instances;
  let state_id inst cs =
    match Fsm.Builder.state b (qname inst.i_name cs) with
    | Some i -> i
    | None -> fail "unknown control state %s.%s" inst.i_name cs
  in
  (* Where does instance [name] exiting with [event] go? *)
  let exit_target name event =
    match
      List.find_opt
        (fun t -> t.Spec.src = name && t.Spec.event = event)
        nf.Spec.n_transitions
    with
    | Some t when t.Spec.dst = Spec.end_state -> done_cs
    | Some t ->
        let next = inst_of t.Spec.dst in
        state_id next (entry_of next event)
    | None -> done_cs
  in
  (* Module-internal edges. *)
  List.iter
    (fun inst ->
      List.iter
        (fun (t : Spec.transition) ->
          if t.src = Spec.start_state then ()
          else
            let src = state_id inst t.src in
            let dst =
              if t.dst = Spec.end_state then exit_target inst.i_name t.event
              else state_id inst t.dst
            in
            Fsm.Builder.add_edge b ~src ~event:t.event ~dst)
        inst.i_spec.Spec.m_transitions)
    instances;
  (* Program entry: first instance in declaration order. *)
  (match nf.Spec.n_modules with
  | [] -> fail "nf %s: no modules" nf.Spec.n_name
  | (first, _) :: _ ->
      let fi = inst_of first in
      Fsm.Builder.add_edge b ~src:start ~event:"packet"
        ~dst:(state_id fi (entry_of fi "packet")));
  let fsm = Fsm.Builder.build b in
  (start, done_cs, fsm)

(* ----- per-state info ----- *)

let build_info instances fsm ~start ~done_cs ~prefetching =
  let n = Fsm.n_states fsm in
  let info =
    Array.init n (fun i ->
        {
          Program.qname = Fsm.name fsm i;
          inst = "";
          action = None;
          prefetch = [];
        })
  in
  List.iter
    (fun inst ->
      List.iter
        (fun cs ->
          if cs <> Spec.start_state && cs <> Spec.end_state then begin
            let id =
              match Fsm.index fsm (qname inst.i_name cs) with
              | Some i -> i
              | None -> fail "lost control state %s.%s" inst.i_name cs
            in
            let action =
              match List.assoc_opt cs inst.i_actions with
              | Some a -> Some a
              | None -> fail "instance %s: no action implementation for %s" inst.i_name cs
            in
            let prefetch =
              if not prefetching then []
              else
                match List.assoc_opt cs inst.i_spec.Spec.m_fetching with
                | None -> []
                | Some state_names ->
                    List.filter_map
                      (fun sname ->
                        match List.assoc_opt sname inst.i_bindings with
                        | Some target -> Some target
                        | None -> (
                            (* control/temp states need no prefetch binding *)
                            match List.assoc_opt sname inst.i_spec.Spec.m_states with
                            | Some ("temp" | "control") -> None
                            | _ ->
                                fail "instance %s: no binding for state %s" inst.i_name
                                  sname))
                      state_names
            in
            info.(id) <- { Program.qname = Fsm.name fsm id; inst = inst.i_name; action; prefetch }
          end)
        (Spec.control_states_of inst.i_spec))
    instances;
  ignore start;
  ignore done_cs;
  info

(* ----- redundant prefetch removal ----- *)

(* Forward must-analysis: a target is "available" at a control state when it
   was prefetched (and not invalidated) on every path from __start. Targets
   available on entry need not be prefetched again. *)
let remove_redundant_prefetch (info : Program.cs_info array) fsm ~start =
  let n = Array.length info in
  let universe =
    Array.to_list info
    |> List.concat_map (fun ci -> ci.Program.prefetch)
    |> List.fold_left
         (fun acc t -> if List.exists (Prefetch.equal_target t) acc then acc else t :: acc)
         []
  in
  let kill_of ci =
    match ci.Program.action with
    | None -> []
    | Some a -> a.Action.invalidates
  in
  let survives kills target =
    not
      (List.exists
         (fun k ->
           match (k, Prefetch.class_of target) with
           | `Match_addrs, `Match_addrs -> true
           | `Per_flow, `Per_flow -> true
           | `Sub_flow, `Sub_flow -> true
           | `Packet, `Packet -> true
           | _ -> false)
         kills)
  in
  let inter a b = List.filter (fun t -> List.exists (Prefetch.equal_target t) b) a in
  let union a b =
    List.fold_left
      (fun acc t -> if List.exists (Prefetch.equal_target t) acc then acc else t :: acc)
      a b
  in
  let avail_out = Array.make n universe in
  avail_out.(start) <- [];
  let preds = Array.init n (fun i -> Fsm.predecessors fsm i) in
  let avail_in i =
    match preds.(i) with
    | [] -> []
    | p :: rest -> List.fold_left (fun acc q -> inter acc avail_out.(q)) avail_out.(p) rest
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if i <> start then begin
        let inp = avail_in i in
        let out =
          List.filter (survives (kill_of info.(i))) (union inp info.(i).Program.prefetch)
        in
        if List.length out <> List.length avail_out.(i) then begin
          avail_out.(i) <- out;
          changed := true
        end
      end
    done
  done;
  let removed = ref 0 in
  for i = 0 to n - 1 do
    let inp = avail_in i in
    let kept =
      List.filter
        (fun t ->
          if List.exists (Prefetch.equal_target t) inp then begin
            incr removed;
            false
          end
          else true)
        info.(i).Program.prefetch
    in
    info.(i).Program.prefetch <- kept
  done;
  !removed

(* ----- top level ----- *)

let compile ?(opts = default_opts) ~name instances (nf : Spec.nf_spec) =
  List.iter (fun i -> Spec.validate_module i.i_spec) instances;
  Spec.validate_nf nf
    ~known_modules:(List.map (fun i -> i.i_spec.Spec.m_name) instances);
  let instances, nf =
    if opts.match_removal then remove_redundant_matching instances nf
    else (instances, nf)
  in
  let start, done_cs, fsm = flatten instances nf in
  let info = build_info instances fsm ~start ~done_cs ~prefetching:opts.prefetching in
  if opts.prefetch_dedup && opts.prefetching then
    ignore (remove_redundant_prefetch info fsm ~start);
  { Program.p_name = name; fsm; info; start; done_cs }
