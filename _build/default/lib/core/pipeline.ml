(* The pipeline execution model (related work, §VIII "More on Execution
   Model"): the SFC's modules are placed on different cores connected by
   software queues; within each stage, processing is still per-packet RTC.

   Simulated faithfully enough for the comparison the paper draws: every
   packet pays an inter-stage handoff (queue operations plus pulling the
   packet descriptor/header from the upstream core's cache — a cross-core
   transfer charged at LLC-ish latency), and each stage's state is private
   to its core. Steady-state throughput is set by the slowest stage, so the
   merged run takes the bottleneck stage's cycles. *)

(* Queue enqueue+dequeue instruction cost per hop. *)
let queue_cycles = 24
let queue_instrs = 18

(* Cross-core cache-line transfer for the packet descriptor + first header
   line (the home cache holds it modified). *)
let transfer_cycles = 55

let run ?(label = "pipeline") (stages : (Worker.t * Program.t) list)
    (source : Workload.source) =
  if stages = [] then invalid_arg "Pipeline.run: no stages";
  let task = Nftask.create 0 in
  (* Drain one stage under RTC, returning survivors in order. *)
  let run_stage (worker, program) (items : Workload.item list) ~first_stage =
    let ctx = Worker.ctx worker in
    let cfg = worker.Worker.cfg in
    let survivors = ref [] in
    List.iter
      (fun (item : Workload.item) ->
        (* RX from the NIC for stage 0; queue + cross-core pull otherwise. *)
        if first_stage then
          Exec_ctx.compute ctx ~cycles:cfg.Worker.rx_tx_cycles
            ~instrs:cfg.Worker.rx_tx_instrs
        else
          Exec_ctx.compute ctx ~cycles:(queue_cycles + transfer_cycles)
            ~instrs:queue_instrs;
        Nftask.load task ~cs:(Program.start program) ?packet:item.Workload.packet
          ~aux:item.Workload.aux ~flow_hint:item.Workload.flow_hint ();
        let rec go () =
          let next = Program.step program task.Nftask.cs task.Nftask.event in
          if Program.is_done program next then begin
            let dropped =
              Event.equal task.Nftask.event Event.Drop_packet
              || Event.equal task.Nftask.event Event.Match_fail
            in
            if not dropped then survivors := item :: !survivors
          end
          else begin
            task.Nftask.cs <- next;
            Exec_ctx.compute ctx ~cycles:cfg.Worker.rtc_dispatch_cycles ~instrs:2;
            (match (Program.info program next).Program.action with
            | Some action -> task.Nftask.event <- Action.execute action ctx task
            | None -> invalid_arg "Pipeline: control state without action");
            go ()
          end
        in
        go ();
        Nftask.retire task)
      items;
    List.rev !survivors
  in
  let rec drain acc =
    match source () with
    | None -> List.rev acc
    | Some item -> drain (item :: acc)
  in
  let items = drain [] in
  let n_in = List.length items in
  let snaps = List.map (fun (w, _) -> (w, Worker.snapshot w)) stages in
  let survivors =
    List.fold_left
      (fun (items, first_stage) stage -> (run_stage stage items ~first_stage, false))
      (items, true) stages
    |> fst
  in
  let out_bytes =
    List.fold_left
      (fun acc (i : Workload.item) ->
        match i.Workload.packet with
        | Some p -> acc + p.Netcore.Packet.wire_len
        | None -> acc)
      0 survivors
  in
  let stage_runs =
    List.mapi
      (fun i (w, snap) ->
        Worker.finish w snap ~label ~packets:n_in ~drops:0
          ~wire_bytes:(if i = 0 then out_bytes else 0)
          ~switches:0)
      snaps
  in
  (* Steady state: stages overlap; the bottleneck stage sets the rate. *)
  let bottleneck =
    List.fold_left (fun acc r -> max acc r.Metrics.cycles) 0 stage_runs
  in
  let merged = Metrics.merge_parallel stage_runs in
  {
    merged with
    Metrics.label;
    cycles = bottleneck;
    packets = n_in;
    drops = n_in - List.length survivors;
  }

let stage_count stages = List.length stages
