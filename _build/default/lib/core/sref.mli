(** Resolved NFState references (§IV-A): a region of the simulated address
    space tagged with its state class. NFActions reach all state through
    references held in their NFTask — the isolation boundary of the
    programming model. *)

type state_class =
  | Match_state  (** flow-classification structures (hash tables, trees) *)
  | Per_flow
  | Sub_flow  (** e.g. PDRs within a PFCP session *)
  | Packet_state
  | Control_state  (** per-NF-instance, shared across flows *)
  | Temp_state  (** per-packet intermediates *)

val class_name : state_class -> string
val class_of_name : string -> state_class option

type t = { cls : state_class; addr : int; bytes : int }

(** @raise Invalid_argument on negative size. *)
val make : cls:state_class -> addr:int -> bytes:int -> t

val pp : Format.formatter -> t -> unit
