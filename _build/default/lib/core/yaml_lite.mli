(** Minimal YAML-subset parser for the specification dialect of §IV-B
    (Listings 1-3): nested maps, lists of scalars, inline scalars,
    [#] comments, significant indentation (tabs rejected). *)

type t =
  | Scalar of string
  | List of t list
  | Map of (string * t) list

(** (line number, message) *)
exception Parse_error of int * string

(** @raise Parse_error on malformed input. *)
val of_string : string -> t

val find : string -> t -> t option
val scalar : t -> string option

(** List of scalar items; an empty scalar counts as an empty list. *)
val scalar_list : t -> string list option
