(** Control-logic FSM (§IV-A): CS is the control-state set, Δ : CS × E → CS
    the transition function. The fetching function F lives in {!Program} as
    per-state action/prefetch info. *)

type t

module Builder : sig
  type b

  val create : unit -> b

  (** Idempotent: re-adding a name returns its existing id. *)
  val add_state : b -> string -> int

  val state : b -> string -> int option

  (** @raise Invalid_argument when a conflicting (src, event) edge exists —
      Δ must be a function. Duplicate identical edges are ignored. *)
  val add_edge : b -> src:int -> event:string -> dst:int -> unit

  val build : b -> t
end

val n_states : t -> int
val name : t -> int -> string
val index : t -> string -> int option

(** Δ: the successor on an event, if defined. *)
val step : t -> int -> Event.t -> int option

val successors : t -> int -> int list
val predecessors : t -> int -> int list
val edges : t -> (int * string * int) list

(** No outgoing edges. *)
val is_terminal : t -> int -> bool
