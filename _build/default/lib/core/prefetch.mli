(** Prefetch policy (§V "Cache Management"): symbolic targets attached by
    the compiler to every control state, resolved at the scheduler's Fetch
    step — via the NFTask's references — into concrete (address, size)
    blocks for the software prefetcher.

    Targets are symbolic so the redundant-prefetch-removal pass can compare
    them across control states. *)

type target =
  | Packet_header of int  (** first [n] bytes of the packet buffer *)
  | Match_addrs  (** whatever the previous match step resolved *)
  | Per_flow of Structures.State_arena.t * (string * int) list
      (** this module's per-flow entry at [task.matched]; a non-empty
          [(field, bytes)] list selects slices only *)
  | Sub_flow of Structures.State_arena.t * (string * int) list
      (** as [Per_flow], at [task.sub_matched] *)
  | Fixed of Sref.t  (** a fixed region, e.g. control state *)

val class_of : target -> [ `Packet | `Match_addrs | `Per_flow | `Sub_flow | `Fixed ]

(** Structural equality (arenas by label). *)
val equal_target : target -> target -> bool

(** Resolve against a task; unresolvable targets (no match yet, no packet)
    yield [] — the action will simply demand-fetch. *)
val resolve : target -> Nftask.t -> (int * int) list

val resolve_all : target list -> Nftask.t -> (int * int) list
val pp_target : Format.formatter -> target -> unit
