(* NFActions (§IV-A): event handlers, classified by the state class they
   interact with. An action's body performs real packet/table logic on the
   OCaml side and charges its memory traffic to the execution context.

   [base_cycles]/[base_instrs] model the action's computation (hashing,
   header rewriting, …) excluding memory-hierarchy time, which the body
   charges per access. [invalidates] declares which prefetchable resources
   the action redefines — the redundant-prefetch-removal pass (§VI-B) uses
   it as its kill set. *)

type kind = Match_action | Data_action | Config_action

type resource = [ `Match_addrs | `Per_flow | `Sub_flow | `Packet ]

type t = {
  name : string;
  kind : kind;
  base_cycles : int;
  base_instrs : int;
  invalidates : resource list;
  body : Exec_ctx.t -> Nftask.t -> Event.t;
}

let make ?(kind = Data_action) ?(base_cycles = 20) ?(base_instrs = 15)
    ?(invalidates = []) ~name body =
  { name; kind; base_cycles; base_instrs; invalidates; body }

let kind_name = function
  | Match_action -> "match"
  | Data_action -> "data"
  | Config_action -> "config"

(* Run the action, charging its base computation. *)
let execute t ctx task =
  Exec_ctx.compute ctx ~cycles:t.base_cycles ~instrs:t.base_instrs;
  t.body ctx task

let pp ppf t = Fmt.pf ppf "%s(%s)" t.name (kind_name t.kind)
