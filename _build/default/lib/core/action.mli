(** NFActions (§IV-A): event handlers classified by the state they touch.
    A body performs real packet/table logic on the OCaml side and charges
    its memory traffic to the execution context. *)

type kind = Match_action | Data_action | Config_action

(** Prefetchable resources an action redefines — the kill set of the
    redundant-prefetch-removal pass (§VI-B). *)
type resource = [ `Match_addrs | `Per_flow | `Sub_flow | `Packet ]

type t = {
  name : string;
  kind : kind;
  base_cycles : int;  (** compute cost excluding memory-hierarchy time *)
  base_instrs : int;
  invalidates : resource list;
  body : Exec_ctx.t -> Nftask.t -> Event.t;
}

val make :
  ?kind:kind -> ?base_cycles:int -> ?base_instrs:int -> ?invalidates:resource list ->
  name:string -> (Exec_ctx.t -> Nftask.t -> Event.t) -> t

val kind_name : kind -> string

(** Run the action, charging its base computation first. *)
val execute : t -> Exec_ctx.t -> Nftask.t -> Event.t

val pp : Format.formatter -> t -> unit
