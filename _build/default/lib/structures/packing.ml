(* Data-packing (§VI-B): group state variables that are accessed
   contemporaneously into the same cache line, following the
   cache-conscious structure definition approach of Chilimbi et al.

   Input: the record's fields and, from the granular decomposition's
   visibility, which fields each NFAction touches and how often. Output: a
   field -> offset layout minimising the number of distinct lines each
   action must fetch. *)

type field = { name : string; bytes : int }

type access = { fields : string list; weight : float }

(* Declaration-order layout with natural alignment — what a C struct (and
   the unoptimised baseline) gets. *)
let sequential fields =
  let align_of bytes = min 8 (max 1 bytes) in
  let offsets, total =
    List.fold_left
      (fun (acc, off) f ->
        let a = align_of f.bytes in
        let off = (off + a - 1) / a * a in
        ((f.name, off) :: acc, off + f.bytes))
      ([], 0) fields
  in
  (List.rev offsets, total)

(* Pairwise affinity: total weight of accesses touching both fields. *)
let affinity accesses f g =
  List.fold_left
    (fun acc a ->
      if List.mem f a.fields && List.mem g a.fields then acc +. a.weight else acc)
    0.0 accesses

let total_weight accesses f =
  List.fold_left
    (fun acc a -> if List.mem f a.fields then acc +. a.weight else acc)
    0.0 accesses

(* Reference-affinity clustering: fields with the same access signature
   (the set of actions that touch them) are always fetched together, so
   they are laid out contiguously as one cluster. Clusters are ordered by
   the similarity of their signatures to the previous cluster's (greedy
   chaining), so that clusters co-accessed by the same actions sit in
   adjacent — often shared — cache lines. *)
let pack ~line_bytes fields accesses =
  let signature f =
    List.mapi (fun i a -> (i, a)) accesses
    |> List.filter_map (fun (i, a) -> if List.mem f.name a.fields then Some i else None)
  in
  (* Group fields by signature, preserving declaration order within. *)
  let clusters : (int list * field list ref) list ref = ref [] in
  List.iter
    (fun f ->
      let s = signature f in
      match List.assoc_opt s !clusters with
      | Some members -> members := f :: !members
      | None -> clusters := !clusters @ [ (s, ref [ f ]) ])
    fields;
  let clusters =
    List.map (fun (s, members) -> (s, List.rev !members)) !clusters
  in
  let cluster_weight (s, _) =
    List.fold_left (fun acc i -> acc +. (List.nth accesses i).weight) 0.0 s
  in
  let overlap (s1, _) (s2, _) =
    List.length (List.filter (fun i -> List.mem i s2) s1)
  in
  (* Start from the heaviest cluster, then repeatedly append the remaining
     cluster sharing the most accesses with the last-placed one. *)
  let ordered =
    match
      List.stable_sort (fun a b -> compare (cluster_weight b) (cluster_weight a)) clusters
    with
    | [] -> []
    | first :: rest ->
        let rec chain placed last = function
          | [] -> List.rev placed
          | remaining ->
              let best =
                List.fold_left
                  (fun acc c ->
                    match acc with
                    | None -> Some c
                    | Some b -> if overlap last c > overlap last b then Some c else acc)
                  None remaining
              in
              let b = Option.get best in
              let remaining = List.filter (fun c -> c != b) remaining in
              chain (b :: placed) b remaining
        in
        chain [ first ] first rest
  in
  (* Lay clusters out contiguously, but start a cluster on a fresh cache
     line when it would otherwise straddle one more line than necessary —
     that alignment is what buys the fewer-lines-per-access win. *)
  let cluster_bytes members =
    List.fold_left
      (fun off f ->
        let a = min 8 (max 1 f.bytes) in
        let off = (off + a - 1) / a * a in
        off + f.bytes)
      0 members
  in
  let offsets, total =
    List.fold_left
      (fun (acc, off) (_, members) ->
        let size = cluster_bytes members in
        let off =
          if size <= line_bytes && (off mod line_bytes) + size > line_bytes then
            (off + line_bytes - 1) / line_bytes * line_bytes
          else off
        in
        List.fold_left
          (fun (acc, off) f ->
            let a = min 8 (max 1 f.bytes) in
            let off = (off + a - 1) / a * a in
            ((f.name, off) :: acc, off + f.bytes))
          (acc, off) members)
      ([], 0) ordered
  in
  (List.rev offsets, total)

(* Number of distinct cache lines an access touches under [offsets]. *)
let lines_touched ~line_bytes fields offsets access =
  let module IS = Set.Make (Int) in
  let find_field n = List.find (fun f -> f.name = n) fields in
  let set =
    List.fold_left
      (fun acc fname ->
        match List.assoc_opt fname offsets with
        | None -> acc
        | Some off ->
            let f = find_field fname in
            let first = off / line_bytes in
            let last = (off + max f.bytes 1 - 1) / line_bytes in
            let rec add acc l = if l > last then acc else add (IS.add l acc) (l + 1) in
            add acc first)
      IS.empty access.fields
  in
  IS.cardinal set

(* Expected lines fetched per unit weight — the objective data packing
   minimises; used by tests and the compiler to report the improvement. *)
let cost ~line_bytes fields offsets accesses =
  List.fold_left
    (fun acc a -> acc +. (a.weight *. float_of_int (lines_touched ~line_bytes fields offsets a)))
    0.0 accesses
