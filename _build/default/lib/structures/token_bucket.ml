(* Token-bucket rate limiter over the simulated clock — the mechanism
   behind the UPF's QoS enforcement rules (QERs). Tokens are bytes; the
   bucket refills at [rate_bytes_per_cycle] up to [burst_bytes]. *)

type t = {
  rate_num : int;  (* bytes per cycle = rate_num / rate_den *)
  rate_den : int;
  burst_bytes : int;
  mutable tokens : int;  (* scaled by rate_den to avoid float drift *)
  mutable last_refill : int;
}

(* [create ~rate_bytes_per_sec ~burst_bytes ~freq_ghz] expresses the rate
   against the simulated clock. *)
let create ~rate_bytes_per_sec ~burst_bytes ~freq_ghz () =
  if rate_bytes_per_sec <= 0 || burst_bytes <= 0 then
    invalid_arg "Token_bucket.create: rate and burst must be positive";
  let cycles_per_sec = int_of_float (freq_ghz *. 1e9) in
  {
    rate_num = rate_bytes_per_sec;
    rate_den = cycles_per_sec;
    burst_bytes;
    tokens = burst_bytes * cycles_per_sec;
    last_refill = 0;
  }

let refill t ~now =
  if now > t.last_refill then begin
    (* Cap the refill window at what fills the bucket, so the
       elapsed * rate product cannot overflow after long idle gaps. *)
    let full_window = (t.burst_bytes * t.rate_den / t.rate_num) + 1 in
    let elapsed = min (now - t.last_refill) full_window in
    t.tokens <- min (t.burst_bytes * t.rate_den) (t.tokens + (elapsed * t.rate_num));
    t.last_refill <- now
  end

(* [admit t ~now ~bytes]: consume if conformant; [false] = exceeds rate. *)
let admit t ~now ~bytes =
  refill t ~now;
  let need = bytes * t.rate_den in
  if t.tokens >= need then begin
    t.tokens <- t.tokens - need;
    true
  end
  else false

let available_bytes t ~now =
  refill t ~now;
  t.tokens / t.rate_den
