(* Multi-dimensional interval (MDI) tree — the paper's sub-flow match
   structure (Fig 6(a)): maps a 5-tuple to a PDR.

   Rules carry an interval per dimension (src ip / src port / dst port /
   proto). The tree is a balanced BST over the *discriminating* dimension
   (source port for the MGW workload — PDR port ranges are disjoint there);
   each node additionally verifies the remaining dimensions. Every node
   occupies its own cache line, and node placement in simulated memory is
   deliberately shuffled so a root-to-leaf walk is a genuine pointer chase:
   each step's target address only becomes known when the parent has been
   read. This is the access pattern whose misses dominate Fig 2/10. *)

type range = { lo : int; hi : int }

let range ~lo ~hi =
  if lo > hi then invalid_arg "Mdi_tree.range: lo > hi";
  { lo; hi }

let full_range = { lo = 0; hi = max_int }

let contains r v = v >= r.lo && v <= r.hi

type rule = {
  src_ip : range;
  src_port : range;
  dst_port : range;
  proto : range;
  value : int;
}

type key = { k_src_ip : int; k_src_port : int; k_dst_port : int; k_proto : int }

type node = {
  rule : rule;
  left : int;   (* node index, -1 = none *)
  right : int;
}

type t = {
  nodes : node array;
  root : int;  (* -1 when empty *)
  base_addr : int;
  placement : int array;  (* node index -> line slot, shuffled *)
}

let node_bytes = 64

let rule_matches r k =
  contains r.src_port k.k_src_port
  && contains r.src_ip k.k_src_ip
  && contains r.dst_port k.k_dst_port
  && contains r.proto k.k_proto

(* Build a balanced BST from rules sorted by src_port.lo. Rules must be
   disjoint along src_port — the discriminating dimension. *)
let create layout ~label ~rules () =
  let rules = Array.of_list rules in
  Array.sort (fun a b -> compare a.src_port.lo b.src_port.lo) rules;
  for i = 1 to Array.length rules - 1 do
    if rules.(i).src_port.lo <= rules.(i - 1).src_port.hi then
      invalid_arg "Mdi_tree.create: rules overlap on the discriminating dimension"
  done;
  let n = Array.length rules in
  let nodes = Array.make n { rule = { src_ip = full_range; src_port = full_range;
                                      dst_port = full_range; proto = full_range;
                                      value = -1 }; left = -1; right = -1 } in
  let next = ref 0 in
  let rec build lo hi =
    if lo > hi then -1
    else begin
      let mid = (lo + hi) / 2 in
      let idx = !next in
      incr next;
      (* Children are built after the parent so indices are preorder-ish;
         physical placement is shuffled below regardless. *)
      let left = build lo (mid - 1) in
      let right = build (mid + 1) hi in
      nodes.(idx) <- { rule = rules.(mid); left; right };
      idx
    end
  in
  let root = build 0 (n - 1) in
  let base_addr =
    Memsim.Layout.alloc_array layout ~align:64 ~label ~stride:node_bytes
      ~count:(max n 1) ()
  in
  let placement = Array.init (max n 1) (fun i -> i) in
  Memsim.Rng.shuffle (Memsim.Rng.create 1299721) placement;
  { nodes; root; base_addr; placement }

let size t = Array.length t.nodes
let root t = if t.root >= 0 then Some t.root else None

let node_addr t idx = t.base_addr + (t.placement.(idx) * node_bytes)

(* One node visit: the granular-decomposed tree-walk action. The caller
   charges a read of [node_addr t idx] before calling. *)
type step_result = Found of int | Descend of int | Miss

let step t ~node:idx key =
  let n = t.nodes.(idx) in
  if rule_matches n.rule key then Found n.rule.value
  else if key.k_src_port < n.rule.src_port.lo then
    if n.left >= 0 then Descend n.left else Miss
  else if n.right >= 0 then Descend n.right
  else Miss

(* Full walk (pure); RTC and tests use this. Returns the matched value and
   the list of node indices visited, root first. *)
let lookup_path t key =
  let rec go idx acc =
    if idx < 0 then (None, List.rev acc)
    else
      match step t ~node:idx key with
      | Found v -> (Some v, List.rev (idx :: acc))
      | Descend next -> go next (idx :: acc)
      | Miss -> (None, List.rev (idx :: acc))
  in
  go t.root []

let lookup t key = fst (lookup_path t key)

let depth t =
  let rec go idx = if idx < 0 then 0 else 1 + max (go t.nodes.(idx).left) (go t.nodes.(idx).right) in
  go t.root

module Forest = struct
  (* Many sessions share one rule *shape* (e.g. every PFCP session's PDRs
     partition the port space the same way) but each session's tree lives
     at its own simulated addresses — 130k sessions x 128 PDRs of distinct
     node state without 16M OCaml records. Lookups still pointer-chase
     through session-private cache lines. *)
  type forest = { shape : t; bases : int array; members : int }

  let create layout ~label ~rules ~members () =
    if members <= 0 then invalid_arg "Mdi_tree.Forest.create";
    let shape = create layout ~label:(label ^ ".shape") ~rules () in
    let n = max (Array.length shape.nodes) 1 in
    let base0 =
      Memsim.Layout.alloc_array layout ~align:64 ~label ~stride:(n * node_bytes)
        ~count:members ()
    in
    let bases = Array.init members (fun m -> base0 + (m * n * node_bytes)) in
    { shape; bases; members }

  let shape f = f.shape
  let members f = f.members

  let node_addr f ~member idx =
    if member < 0 || member >= f.members then invalid_arg "Mdi_tree.Forest.node_addr";
    f.bases.(member) + (f.shape.placement.(idx) * node_bytes)
end
