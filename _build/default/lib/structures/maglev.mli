(** Maglev consistent hashing (Eisenbud et al., NSDI'16): the connection
    scheduler used by the stateful load balancer. Near-perfect balance and
    minimal disruption under backend-set changes. *)

type t

val default_table_size : int

(** @raise Invalid_argument unless [table_size] is prime, positive and at
    least [n_backends]. *)
val build : ?table_size:int -> n_backends:int -> unit -> t

val table_size : t -> int
val n_backends : t -> int

(** Backend index for a 64-bit flow key. *)
val lookup : t -> int64 -> int

(** Per-backend fraction of table slots (balance diagnostics). *)
val shares : t -> float array

(** Fraction of slots mapping to a different backend in the other table —
    the disruption metric Maglev minimises.
    @raise Invalid_argument for different table sizes. *)
val disruption : t -> t -> float
