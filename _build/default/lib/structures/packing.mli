(** Data packing (§VI-B): lay out state variables so that variables
    accessed contemporaneously share cache lines, after the cache-conscious
    structure definitions of Chilimbi et al.

    The granular decomposition provides the input for free: every NFAction
    declares the fields it touches. *)

type field = { name : string; bytes : int }

(** One action's field set with its access frequency. *)
type access = { fields : string list; weight : float }

(** Declaration-order layout with natural alignment — the unoptimised
    baseline. Returns (field offsets, total bytes). *)
val sequential : field list -> (string * int) list * int

(** Total weight of accesses touching both fields. *)
val affinity : access list -> string -> string -> float

val total_weight : access list -> string -> float

(** Reference-affinity clustering: fields with identical access signatures
    are laid out contiguously; clusters are chained by signature overlap
    and aligned to cache lines when that saves a line per access. *)
val pack : line_bytes:int -> field list -> access list -> (string * int) list * int

(** Distinct cache lines one access touches under a layout. *)
val lines_touched : line_bytes:int -> field list -> (string * int) list -> access -> int

(** Weighted expected lines per access — the objective packing minimises. *)
val cost : line_bytes:int -> field list -> (string * int) list -> access list -> float
