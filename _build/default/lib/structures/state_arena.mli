(** Pre-allocated per-flow / sub-flow state datablocks (§V "NF Management"):
    entries are allocated up front; a match result is an index, and actions
    reach state at [base + index * stride].

    Layouts: {!create} gives each state type its own arena with one line
    per entry (the conventional unpacked layout); {!create_group} packs the
    per-flow states of several chained NFs into one entry (data packing,
    §VI-B); {!create_record} lays a record out by explicit field offsets
    (e.g. from {!Packing}). *)

type t

val line_bytes : int

(** @raise Invalid_argument on non-positive sizes. *)
val create : Memsim.Layout.t -> label:string -> entry_bytes:int -> count:int -> unit -> t

(** Record arena with named field offsets (from {!Packing.pack} or
    {!Packing.sequential}). *)
val create_record :
  Memsim.Layout.t -> label:string -> field_offsets:(string * int) list ->
  record_bytes:int -> count:int -> unit -> t

val label : t -> string
val count : t -> int
val stride : t -> int
val entry_bytes : t -> int
val lines_per_entry : t -> int

(** Simulated address of entry [idx].
    @raise Invalid_argument when out of range. *)
val addr : t -> int -> int

(** Address of a named field inside entry [idx].
    @raise Invalid_argument on unknown fields. *)
val field_addr : t -> int -> string -> int

val field_offset : t -> string -> int

(** {2 Packed groups} *)

type group

(** One packed entry per flow holding every member's state contiguously. *)
val create_group :
  Memsim.Layout.t -> label:string -> members:(string * int) list -> count:int ->
  unit -> group

val group_arena : group -> t
val group_addr : group -> int -> string -> int
val group_member_bytes : group -> string -> int

(** Present one member of a group as an ordinary arena: NFs written against
    plain arenas run unchanged on packed layouts. *)
val view : group -> member:string -> t
