(* Maglev consistent hashing (Eisenbud et al., NSDI'16) — the connection
   scheduler of the stateful load balancer. Builds the lookup table with
   each backend's (offset, skip) permutation and greedy filling; guarantees
   near-perfect balance and minimal disruption when the backend set
   changes. *)

type t = {
  table : int array;  (* slot -> backend index *)
  n_backends : int;
}

(* Table size must be prime and >> backends; 65537 is Maglev's small size. *)
let default_table_size = 65537

let is_prime n =
  if n < 2 then false
  else
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
    go 2

let mix h seed =
  let h = Int64.mul (Int64.of_int (h lxor seed)) 0x9E3779B97F4A7C15L in
  Int64.to_int (Int64.shift_right_logical h 33)

(* Permutation parameters per backend, from its identity hash. *)
let offset_skip ~table_size backend =
  let h1 = mix backend 0x5bd1e995 and h2 = mix backend 0x1b873593 in
  (h1 mod table_size, 1 + (h2 mod (table_size - 1)))

let build ?(table_size = default_table_size) ~n_backends () =
  if n_backends <= 0 then invalid_arg "Maglev.build: no backends";
  if not (is_prime table_size) then invalid_arg "Maglev.build: table size must be prime";
  if n_backends > table_size then invalid_arg "Maglev.build: more backends than slots";
  let table = Array.make table_size (-1) in
  let next = Array.make n_backends 0 in
  let params = Array.init n_backends (fun b -> offset_skip ~table_size b) in
  let filled = ref 0 in
  (* Round-robin over backends; each takes its next preferred empty slot. *)
  let rec fill () =
    if !filled < table_size then begin
      for b = 0 to n_backends - 1 do
        if !filled < table_size then begin
          let offset, skip = params.(b) in
          let rec claim () =
            let slot = (offset + (next.(b) * skip)) mod table_size in
            next.(b) <- next.(b) + 1;
            if table.(slot) >= 0 then claim ()
            else begin
              table.(slot) <- b;
              incr filled
            end
          in
          claim ()
        end
      done;
      fill ()
    end
  in
  fill ();
  { table; n_backends }

let table_size t = Array.length t.table
let n_backends t = t.n_backends

(* Backend for a 64-bit flow key. *)
let lookup t key =
  let slot = Int64.to_int (Int64.rem (Int64.logand key Int64.max_int)
                             (Int64.of_int (Array.length t.table))) in
  t.table.(slot)

(* Fraction of table slots owned by each backend (balance diagnostics). *)
let shares t =
  let counts = Array.make t.n_backends 0 in
  Array.iter (fun b -> counts.(b) <- counts.(b) + 1) t.table;
  Array.map (fun c -> float_of_int c /. float_of_int (Array.length t.table)) counts

(* Fraction of slots that map to a different backend in [t'] — the
   disruption metric Maglev minimises. *)
let disruption t t' =
  if Array.length t.table <> Array.length t'.table then
    invalid_arg "Maglev.disruption: incomparable tables";
  let moved = ref 0 in
  Array.iteri (fun i b -> if t'.table.(i) <> b then incr moved) t.table;
  float_of_int !moved /. float_of_int (Array.length t.table)
