lib/structures/cuckoo.ml: Array Int64 Memsim
