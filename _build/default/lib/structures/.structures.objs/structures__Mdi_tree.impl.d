lib/structures/mdi_tree.ml: Array List Memsim
