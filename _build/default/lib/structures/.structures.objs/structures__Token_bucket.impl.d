lib/structures/token_bucket.ml:
