lib/structures/maglev.ml: Array Int64
