lib/structures/state_arena.ml: Array List Memsim String
