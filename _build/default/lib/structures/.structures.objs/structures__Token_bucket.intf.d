lib/structures/token_bucket.mli:
