lib/structures/cuckoo.mli: Memsim
