lib/structures/maglev.mli:
