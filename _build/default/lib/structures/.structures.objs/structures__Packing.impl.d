lib/structures/packing.ml: Int List Option Set
