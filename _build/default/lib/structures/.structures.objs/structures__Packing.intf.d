lib/structures/packing.mli:
