lib/structures/mdi_tree.mli: Memsim
