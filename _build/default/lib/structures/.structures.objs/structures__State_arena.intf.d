lib/structures/state_arena.mli: Memsim
