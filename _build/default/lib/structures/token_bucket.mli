(** Token-bucket rate limiter over the simulated cycle clock — the
    mechanism behind the UPF's QoS enforcement rules (QERs). Tokens are
    bytes. *)

type t

(** @raise Invalid_argument on non-positive rate or burst. *)
val create : rate_bytes_per_sec:int -> burst_bytes:int -> freq_ghz:float -> unit -> t

(** [admit t ~now ~bytes]: refill to [now], then consume if conformant;
    [false] means the packet exceeds the configured rate. *)
val admit : t -> now:int -> bytes:int -> bool

(** Bytes currently available after refilling to [now]. *)
val available_bytes : t -> now:int -> int
