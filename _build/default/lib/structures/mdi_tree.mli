(** Multi-dimensional interval (MDI) tree — the sub-flow match structure
    (Fig 6(a)): maps a 5-tuple to a PDR.

    A balanced BST over the discriminating dimension (source port in the
    MGW workload); every node checks the remaining dimensions. Nodes occupy
    one cache line each, shuffled in simulated memory, so a lookup is a
    genuine pointer chase whose next address is only known after reading
    the parent — the access pattern behind Fig 2/10. *)

type range = { lo : int; hi : int }

(** @raise Invalid_argument when [lo > hi]. *)
val range : lo:int -> hi:int -> range

val full_range : range
val contains : range -> int -> bool

type rule = {
  src_ip : range;
  src_port : range;
  dst_port : range;
  proto : range;
  value : int;
}

type key = { k_src_ip : int; k_src_port : int; k_dst_port : int; k_proto : int }

type t

val node_bytes : int

(** Build from rules disjoint along [src_port].
    @raise Invalid_argument on overlap. *)
val create : Memsim.Layout.t -> label:string -> rules:rule list -> unit -> t

val size : t -> int
val depth : t -> int

(** Root node index; [None] for an empty tree. *)
val root : t -> int option

(** Simulated address of a node's cache line. *)
val node_addr : t -> int -> int

type step_result = Found of int | Descend of int | Miss

(** One node visit — the granular tree-walk action. The caller charges the
    read of [node_addr] before calling. *)
val step : t -> node:int -> key -> step_result

(** Full walk; returns the matched value and the node path (root first). *)
val lookup_path : t -> key -> int option * int list

val lookup : t -> key -> int option

val rule_matches : rule -> key -> bool

module Forest : sig
  (** Many members (sessions) sharing one rule shape, each with private
      node addresses: 130k sessions of PDR state without 16M OCaml
      records. *)
  type forest

  val create :
    Memsim.Layout.t -> label:string -> rules:rule list -> members:int -> unit -> forest

  val shape : forest -> t
  val members : forest -> int

  (** @raise Invalid_argument when [member] is out of range. *)
  val node_addr : forest -> member:int -> int -> int
end
