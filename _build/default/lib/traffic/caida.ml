(* CAIDA-like synthetic traces.

   Substitution (see DESIGN.md): we cannot ship real CAIDA captures, so we
   reproduce the two properties of them that the paper's experiments depend
   on — heavy-tailed flow popularity (few elephant flows, many mice) and a
   realistic packet-size mix. Parameters follow published characterisations
   of CAIDA equinix backbone traces: Zipf exponent ~1.1 over flows, size mix
   dominated by small ACK-sized and MTU-sized packets. *)

let zipf_exponent = 1.1

(* Approximate backbone packet-size mix (weights sum to 20): mean ~717B. *)
let size_model =
  Flowgen.Mix [ (64, 6); (350, 2); (576, 2); (1024, 2); (1500, 8) ]

let create ?(seed = 7) ~n_flows () =
  Flowgen.create ~seed ~popularity:(Flowgen.Zipf zipf_exponent) ~size_model
    ~n_flows ()

let mean_wire_bytes = Flowgen.mean_size size_model
