lib/traffic/flowgen.ml: Array Flow Int32 Ipv4 List Memsim Netcore Packet Zipf
