lib/traffic/flowgen.mli: Netcore
