lib/traffic/caida.ml: Flowgen
