lib/traffic/zipf.mli: Memsim
