lib/traffic/caida.mli: Flowgen
