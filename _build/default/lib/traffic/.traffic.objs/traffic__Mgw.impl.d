lib/traffic/mgw.ml: Array Flow Flowgen Int32 Ipv4 Memsim Netcore Packet Zipf
