lib/traffic/mgw.mli: Flowgen Netcore
