lib/traffic/zipf.ml: Array Memsim
