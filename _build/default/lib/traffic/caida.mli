(** CAIDA-like synthetic traces (see DESIGN.md's substitution table): real
    CAIDA captures cannot ship, so this reproduces the two properties the
    experiments depend on — heavy-tailed (Zipf ~1.1) flow popularity and a
    backbone-like packet-size mix. *)

val zipf_exponent : float
val size_model : Flowgen.size_model
val mean_wire_bytes : float

val create : ?seed:int -> n_flows:int -> unit -> Flowgen.t
