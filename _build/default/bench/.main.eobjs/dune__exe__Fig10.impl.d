bench/fig10.ml: Bench_common Gunfu List Printf
