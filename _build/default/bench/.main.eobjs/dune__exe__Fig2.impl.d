bench/fig2.ml: Bench_common Gunfu List
