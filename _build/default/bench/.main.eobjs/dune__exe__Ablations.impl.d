bench/ablations.ml: Bench_common Gunfu List Memsim Netcore Nfs Traffic
