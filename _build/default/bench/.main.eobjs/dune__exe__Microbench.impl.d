bench/microbench.ml: Analyze Bechamel Bench_common Benchmark Float Gunfu Hashtbl Instance Int64 List Measure Memsim Netcore Staged Structures Test Time Toolkit
