bench/main.ml: Ablations Array Fig10 Fig11 Fig12 Fig13 Fig14 Fig15 Fig2 Fig3 Fig9 List Microbench Printf Sys
