bench/main.mli:
