bench/fig11.ml: Bench_common Gunfu List Printf
