bench/fig13.ml: Bench_common Gunfu List
