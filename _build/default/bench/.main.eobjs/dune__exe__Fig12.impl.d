bench/fig12.ml: Bench_common Gunfu List Memsim Nfs Traffic
