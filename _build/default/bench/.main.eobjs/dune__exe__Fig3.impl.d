bench/fig3.ml: Bench_common Gunfu List Nfs Traffic
