bench/bench_common.ml: Gunfu Memsim Metrics Netcore Nfs Printf Rtc Scheduler Traffic Worker Workload
