bench/fig15.ml: Array Bench_common Float Gunfu Lazy List Memsim Netcore Nfs Traffic
