bench/fig14.ml: Bench_common Float Gunfu List Netcore Nfs Traffic
