(* Bechamel micro-benchmarks of the substrate primitives (wall-clock costs
   of the simulator itself, not simulated cycles): cuckoo lookup, MDI tree
   walk, cache access, flow hashing, NF-C interpretation. Useful for
   keeping the simulator fast enough to drive the figure sweeps. *)

open Bechamel
open Toolkit

let cuckoo_test =
  let layout = Memsim.Layout.create () in
  let t = Structures.Cuckoo.create layout ~label:"c" ~capacity:65536 () in
  for i = 0 to 65535 do
    ignore (Structures.Cuckoo.insert t ~key:(Int64.of_int (i * 3)) ~value:i)
  done;
  let i = ref 0 in
  Test.make ~name:"cuckoo.lookup"
    (Staged.stage (fun () ->
         i := (!i + 1) land 0xFFFF;
         ignore (Structures.Cuckoo.lookup t (Int64.of_int (!i * 3)))))

let mdi_test =
  let layout = Memsim.Layout.create () in
  let rules =
    List.init 128 (fun j ->
        {
          Structures.Mdi_tree.src_ip = Structures.Mdi_tree.full_range;
          src_port = Structures.Mdi_tree.range ~lo:(j * 100) ~hi:((j * 100) + 99);
          dst_port = Structures.Mdi_tree.full_range;
          proto = Structures.Mdi_tree.full_range;
          value = j;
        })
  in
  let t = Structures.Mdi_tree.create layout ~label:"m" ~rules () in
  let i = ref 0 in
  Test.make ~name:"mdi.lookup"
    (Staged.stage (fun () ->
         i := (!i + 97) mod 12800;
         ignore
           (Structures.Mdi_tree.lookup t
              { Structures.Mdi_tree.k_src_ip = 1; k_src_port = !i; k_dst_port = 1; k_proto = 0 })))

let cache_test =
  let h = Memsim.Hierarchy.create () in
  let i = ref 0 in
  Test.make ~name:"hierarchy.read"
    (Staged.stage (fun () ->
         i := (!i + 4096) land 0xFFFFF;
         ignore (Memsim.Hierarchy.read h ~now:!i ~addr:!i ~bytes:8)))

let flow_hash_test =
  let flow =
    Netcore.Flow.make ~src_ip:0x0A000001l ~dst_ip:0x0A000002l ~src_port:1234 ~dst_port:80
      ~proto:6
  in
  Test.make ~name:"flow.key64" (Staged.stage (fun () -> ignore (Netcore.Flow.key64 flow)))

let nfc_test =
  let binding =
    {
      Gunfu.Nfc.read_field = (fun _ _ _ _ -> 7);
      write_field = (fun _ _ _ _ _ -> ());
    }
  in
  let action =
    Gunfu.Nfc.compile ~binding
      "NFAction(x) { Packet.a = PerFlowState.b * 2 + 1; Emit(Event_Packet); }"
  in
  let worker = Gunfu.Worker.create ~id:0 () in
  let task = Gunfu.Nftask.create 0 in
  Gunfu.Nftask.load task ~cs:0 ();
  Test.make ~name:"nfc.interpret"
    (Staged.stage (fun () ->
         ignore (Gunfu.Action.execute action (Gunfu.Worker.ctx worker) task)))

let run () =
  Bench_common.header "Microbenchmarks (bechamel, host wall-clock ns/op)";
  let tests =
    Test.make_grouped ~name:"primitives"
      [ cuckoo_test; mdi_test; cache_test; flow_hash_test; nfc_test ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      let ns =
        match Analyze.OLS.estimates est with Some [ v ] -> v | _ -> Float.nan
      in
      Bench_common.row "%-28s %10.1f ns/op" name ns)
    (List.sort compare rows)
