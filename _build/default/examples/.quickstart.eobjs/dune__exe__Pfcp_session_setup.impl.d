examples/pfcp_session_setup.ml: Gunfu Int32 Memsim Netcore Nfs Printf String Traffic
