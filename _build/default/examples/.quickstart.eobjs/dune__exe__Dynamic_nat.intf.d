examples/dynamic_nat.mli:
