examples/pfcp_session_setup.mli:
