examples/quickstart.ml: Gunfu Netcore Nfs Printf Traffic
