examples/sfc_chain.mli:
