examples/quickstart.mli:
