examples/upf_downlink.mli:
