examples/dynamic_nat.ml: Filename Fmt Gunfu Int32 List Memsim Netcore Nfs Printf
