examples/amf_registration.ml: Array Gunfu List Netcore Nfs Printf Traffic
