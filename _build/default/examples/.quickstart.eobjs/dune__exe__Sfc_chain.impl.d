examples/sfc_chain.ml: Fmt Gunfu List Netcore Nfs Printf Traffic
