examples/amf_registration.mli:
