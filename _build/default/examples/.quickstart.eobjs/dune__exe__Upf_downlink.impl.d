examples/upf_downlink.ml: Gunfu Int32 Lazy List Memsim Netcore Nfs Printf Traffic
