(* UPF downlink through the director control plane (Fig 4):

   - register module and NF specifications,
   - generate the configuration template an operator fills in,
   - deploy the UPF onto a 2-core platform,
   - push downlink traffic and exchange statistics with the runtime,
   - show that packets really leave with a GTP-U tunnel header.

     dune exec examples/upf_downlink.exe
*)

let n_sessions = 65536
let n_pdrs = 16
let packets_per_core = 80_000

let () =
  Printf.printf "UPF downlink on GuNFu: %d PFCP sessions x %d PDRs\n\n" n_sessions n_pdrs;

  (* Control plane: specification registry. *)
  let director = Gunfu.Director.create () in
  Gunfu.Director.register_module director (Lazy.force Nfs.Classifier.spec);
  Gunfu.Director.register_module director (Lazy.force Nfs.Upf.pdr_spec);
  Gunfu.Director.register_module director (Lazy.force Nfs.Upf.encap_spec);
  let nf_spec, _ =
    let layout = Memsim.Layout.create () in
    let mgw = Traffic.Mgw.create ~n_sessions:16 ~n_pdrs:2 () in
    let upf =
      Nfs.Upf.create layout ~name:"upf" ~sessions:(Traffic.Mgw.sessions mgw) ~n_pdrs:2 ()
    in
    Nfs.Nf_unit.chain ~name:"upf" [ Nfs.Upf.unit upf ]
  in
  Gunfu.Director.register_nf director nf_spec;
  let template = Gunfu.Director.config_template director "upf" in
  Printf.printf "configuration template (operator fills these in):\n";
  List.iter (fun (k, _) -> Printf.printf "  %s:\n" k) template;
  let config =
    [
      ("capacity", string_of_int n_sessions);
      ("header_type", "ipv4_5tuple");
      ("n_pdrs", string_of_int n_pdrs);
      ("upf_n3_addr", "10.200.0.1");
    ]
  in
  Gunfu.Director.validate_config template config;

  (* Data plane builder: instantiates per-core substrate state. RSS means
     each core serves its own slice of the session space. *)
  let builder _config worker ~core =
    let layout = Gunfu.Worker.layout worker in
    let mgw =
      Traffic.Mgw.create ~seed:(100 + core) ~n_sessions:(n_sessions / 2) ~n_pdrs ()
    in
    let pool = Netcore.Packet.Pool.create layout ~count:1024 in
    let upf =
      Nfs.Upf.create layout ~name:"upf" ~sessions:(Traffic.Mgw.sessions mgw) ~n_pdrs ()
    in
    Nfs.Upf.populate upf;
    ( Nfs.Upf.program upf,
      Gunfu.Workload.of_mgw_downlink mgw ~pool ~count:packets_per_core )
  in
  let deployment =
    Gunfu.Director.deploy director ~name:"upf-prod" ~cores:2 ~config ~builder ()
  in
  Printf.printf "\ndeployed 'upf-prod' on %d cores; running...\n\n" 2;
  let rtc = Gunfu.Director.run deployment Gunfu.Director.Run_to_completion in
  let il = Gunfu.Director.run deployment (Gunfu.Director.Interleaved 16) in
  Printf.printf "  RTC         : %6.2f Mpps  %6.2f Gbps\n" (Gunfu.Metrics.mpps rtc)
    (Gunfu.Metrics.gbps rtc);
  Printf.printf "  interleaved : %6.2f Mpps  %6.2f Gbps  (%.2fx)\n" (Gunfu.Metrics.mpps il)
    (Gunfu.Metrics.gbps il)
    (Gunfu.Metrics.mpps il /. Gunfu.Metrics.mpps rtc);

  (* Prove the data path really tunnels: run one packet through a fresh
     single-core UPF and decode the resulting GTP-U header. *)
  let worker = Gunfu.Worker.create ~id:9 () in
  let layout = Gunfu.Worker.layout worker in
  let mgw = Traffic.Mgw.create ~n_sessions:64 ~n_pdrs:4 () in
  let pool = Netcore.Packet.Pool.create layout ~count:16 in
  let upf = Nfs.Upf.create layout ~name:"upf" ~sessions:(Traffic.Mgw.sessions mgw) ~n_pdrs:4 () in
  Nfs.Upf.populate upf;
  let program = Nfs.Upf.program upf in
  let si, _, pkt = Traffic.Mgw.next_downlink mgw in
  Netcore.Packet.Pool.assign pool pkt;
  let item = { Gunfu.Workload.packet = Some pkt; aux = 0; flow_hint = si } in
  let _ = Gunfu.Rtc.run worker program (Gunfu.Workload.total_items [ item ]) in
  let outer = Netcore.Ipv4.decode pkt.Netcore.Packet.buf ~off:Netcore.Ethernet.header_bytes in
  let gtpu =
    Netcore.Gtpu.decode pkt.Netcore.Packet.buf
      ~off:(Netcore.Ethernet.header_bytes + Netcore.Ipv4.header_bytes + Netcore.L4.udp_header_bytes)
  in
  Printf.printf "\nsample downlink packet after UPF (session %d):\n" si;
  Printf.printf "  outer IPv4  %s -> %s (proto %d)\n"
    (Netcore.Ipv4.addr_to_string outer.Netcore.Ipv4.src)
    (Netcore.Ipv4.addr_to_string outer.Netcore.Ipv4.dst)
    outer.Netcore.Ipv4.proto;
  Printf.printf "  GTP-U       teid=0x%lx msg=0x%x\n" gtpu.Netcore.Gtpu.teid
    gtpu.Netcore.Gtpu.msg_type;
  let expected = (Traffic.Mgw.session mgw si).Traffic.Mgw.teid in
  assert (Int32.equal gtpu.Netcore.Gtpu.teid expected);
  Printf.printf "  teid matches session %d's PFCP state: OK\n" si
