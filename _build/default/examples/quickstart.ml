(* Quickstart: build a NAT from the GuNFu programming model, run the same
   compiled program under per-packet run-to-completion and under the
   interleaved function-stream execution model, and compare.

     dune exec examples/quickstart.exe
*)

let () =
  let n_flows = 65536 in
  let packets = 100_000 in
  Printf.printf "GuNFu quickstart: NAT, %d concurrent flows, %d packets/run\n\n" n_flows
    packets;

  (* One simulated core per execution model so cache state is independent. *)
  let run_model label make_run =
    let worker = Gunfu.Worker.create ~id:0 () in
    let layout = Gunfu.Worker.layout worker in
    (* Substrate: flow universe, packet buffer pool, NAT tables. *)
    let gen = Traffic.Flowgen.create ~seed:1 ~n_flows ~size_model:(Traffic.Flowgen.Fixed 128) () in
    let pool = Netcore.Packet.Pool.create layout ~count:1024 in
    let nat = Nfs.Nat.create layout ~name:"nat" ~n_flows () in
    Nfs.Nat.populate nat (Traffic.Flowgen.flows gen);
    let program = Nfs.Nat.program nat in
    let source = Gunfu.Workload.of_flowgen gen ~pool ~count:packets in
    let run = make_run worker program source in
    Printf.printf "%-22s %7.2f Mpps  %7.2f Gbps  IPC %.2f  cyc/pkt %7.1f  L1m/pkt %.2f\n"
      label (Gunfu.Metrics.mpps run) (Gunfu.Metrics.gbps run) (Gunfu.Metrics.ipc run)
      (Gunfu.Metrics.cycles_per_packet run)
      (Gunfu.Metrics.l1_misses_per_packet run);
    run
  in

  let rtc =
    run_model "run-to-completion" (fun w p s -> Gunfu.Rtc.run ~label:"nat/rtc" w p s)
  in
  let inter =
    run_model "interleaved (16 NFTasks)" (fun w p s ->
        Gunfu.Scheduler.run ~label:"nat/interleaved" w p ~n_tasks:16 s)
  in
  Printf.printf "\nSpeedup: %.2fx\n" (Gunfu.Metrics.mpps inter /. Gunfu.Metrics.mpps rtc)
