(* AMF initial registration: heterogeneous signalling messages against a
   large (>20 cache lines) UE context — the paper's state-complexity case
   (EXP B / Fig 12). Demonstrates:

   - the per-UE registration state machine actually progressing,
   - per-message cache-line footprints, with and without data packing,
   - throughput under RTC vs the interleaved execution model.

     dune exec examples/amf_registration.exe
*)

let n_ues = 131072
let messages = 60_000

let run ~model ~packed =
  let worker = Gunfu.Worker.create ~id:0 () in
  let layout = Gunfu.Worker.layout worker in
  let gen = Traffic.Mgw.amf_create ~seed:3 ~n_ues () in
  let pool = Netcore.Packet.Pool.create layout ~count:1024 in
  let amf = Nfs.Amf.create layout ~name:"amf" ~packed ~n_ues () in
  Nfs.Amf.populate amf;
  let program = Nfs.Amf.program amf in
  let source = Gunfu.Workload.of_amf gen ~pool ~count:messages in
  let r =
    match model with
    | `Rtc -> Gunfu.Rtc.run worker program source
    | `Il n -> Gunfu.Scheduler.run worker program ~n_tasks:n source
  in
  (r, amf)

let () =
  Printf.printf "AMF initial registration, %d UEs, %d messages\n\n" n_ues messages;

  (* Small functional walk-through: one UE registers end to end. *)
  let worker = Gunfu.Worker.create ~id:1 () in
  let layout = Gunfu.Worker.layout worker in
  let amf = Nfs.Amf.create layout ~name:"amf" ~n_ues:8 () in
  Nfs.Amf.populate amf;
  let program = Nfs.Amf.program amf in
  let pool = Netcore.Packet.Pool.create layout ~count:16 in
  let gen = Traffic.Mgw.amf_create ~n_ues:1 () in
  let _ = Gunfu.Rtc.run worker program (Gunfu.Workload.of_amf gen ~pool ~count:5) in
  Printf.printf "one UE sent the 5-message registration call flow:\n";
  Printf.printf "  completed registrations: %d, protocol errors: %d\n\n"
    amf.Nfs.Amf.registrations.(0) amf.Nfs.Amf.protocol_errors;

  (* Per-message footprint: how many UE-context lines each handler needs. *)
  let amf_unpacked = Nfs.Amf.create layout ~name:"amf_u" ~packed:false ~n_ues:8 () in
  let amf_packed = Nfs.Amf.create layout ~name:"amf_p" ~packed:true ~n_ues:8 () in
  Printf.printf "%-26s %10s %10s\n" "message" "lines" "lines+DP";
  List.iter
    (fun m ->
      Printf.printf "%-26s %10d %10d\n"
        (Traffic.Mgw.amf_msg_name m)
        (Nfs.Amf.lines_per_message amf_unpacked m)
        (Nfs.Amf.lines_per_message amf_packed m))
    Traffic.Mgw.all_amf_msgs;

  Printf.printf "\nthroughput (messages/second):\n";
  let rtc, _ = run ~model:`Rtc ~packed:false in
  let il, _ = run ~model:(`Il 16) ~packed:false in
  let il_dp, _ = run ~model:(`Il 16) ~packed:true in
  let p label r =
    Printf.printf "  %-26s %7.3f Mmsg/s  IPC %.2f  LLC misses/msg %.2f\n" label
      (Gunfu.Metrics.mpps r) (Gunfu.Metrics.ipc r)
      (Gunfu.Metrics.llc_misses_per_packet r)
  in
  p "RTC" rtc;
  p "interleaved x16" il;
  p "interleaved x16 + DP" il_dp;
  Printf.printf "\nimprovement over RTC: %.0f%% (paper: ~60%%)\n"
    ((Gunfu.Metrics.mpps il_dp /. Gunfu.Metrics.mpps rtc -. 1.0) *. 100.0)
