(* Dynamic NAT with flow churn: unknown flows take the classifier's
   MATCH_FAIL path into a learner action that allocates a mapping and
   installs the match-state entry at runtime — then the translated traffic
   is exported as a real pcap capture.

     dune exec examples/dynamic_nat.exe
     tcpdump -nr /tmp/gunfu_nat.pcap | head     # if tcpdump is available
*)

let () =
  let capacity = 8192 in
  let worker = Gunfu.Worker.create ~id:0 () in
  let layout = Gunfu.Worker.layout worker in
  let pool = Netcore.Packet.Pool.create layout ~count:512 in
  let nat = Nfs.Nat.create layout ~name:"nat" ~n_flows:capacity () in
  (* No pre-population: every flow is learned on its first packet. *)
  let program = Nfs.Nat.dynamic_program nat in

  Printf.printf "dynamic NAT, capacity %d mappings, nothing pre-installed\n\n" capacity;

  (* Churny workload: 2000 flows arriving over time, a few packets each. *)
  let rng = Memsim.Rng.create 77 in
  let n_flows = 2000 in
  let mk_flow i =
    Netcore.Flow.make
      ~src_ip:(Int32.of_int (0x0AC00000 + i))
      ~dst_ip:(Netcore.Ipv4.addr_of_string "198.51.100.10")
      ~src_port:(1024 + (i mod 60000))
      ~dst_port:443 ~proto:Netcore.Ipv4.proto_udp
  in
  let pcap = Netcore.Pcap.create_writer () in
  let captured = ref 0 in
  let source =
    Gunfu.Workload.limited 10_000 (fun () ->
        (* New flows arrive biased towards recently-arrived ones. *)
        let horizon = min n_flows (1 + (!captured / 5)) in
        let i = Memsim.Rng.int rng horizon in
        let pkt = Netcore.Packet.make ~flow:(mk_flow i) ~wire_len:128 () in
        Netcore.Packet.Pool.assign pool pkt;
        incr captured;
        { Gunfu.Workload.packet = Some pkt; aux = 0; flow_hint = i })
  in
  let run = Gunfu.Scheduler.run worker program ~n_tasks:16 source in
  Printf.printf "processed %d packets: %.2f Mpps, %d mappings learned, %d drops\n"
    run.Gunfu.Metrics.packets (Gunfu.Metrics.mpps run) nat.Nfs.Nat.learned
    run.Gunfu.Metrics.drops;
  (match run.Gunfu.Metrics.latency with
  | Some _ -> Printf.printf "%s\n" (Fmt.str "%a" Gunfu.Metrics.pp_latency run)
  | None -> ());

  (* Show a few translated packets and export them. *)
  Printf.printf "\nsample translations (flow -> after NAT):\n";
  for i = 0 to 4 do
    let flow = mk_flow i in
    let pkt = Netcore.Packet.make ~flow ~wire_len:128 () in
    Netcore.Packet.Pool.assign pool pkt;
    let item = { Gunfu.Workload.packet = Some pkt; aux = 0; flow_hint = i } in
    let _ = Gunfu.Rtc.run worker program (Gunfu.Workload.total_items [ item ]) in
    let out = Netcore.Packet.flow_of_headers pkt in
    Printf.printf "  %s -> %s\n"
      (Fmt.str "%a" Netcore.Flow.pp flow)
      (Fmt.str "%a" Netcore.Flow.pp out);
    Netcore.Pcap.add_packet pcap ~ts_us:(i * 10) pkt
  done;
  let path = Filename.temp_file "gunfu_nat" ".pcap" in
  Netcore.Pcap.write_file pcap path;
  let records = Netcore.Pcap.read_file path in
  Printf.printf "\nwrote %d translated packets to %s (valid pcap: %b)\n"
    (List.length records) path
    (List.length records = 5)
