(* Control plane meets data plane: an SMF establishes PFCP sessions in an
   (initially empty) UPF over the N4 wire protocol, then downlink traffic
   flows through the freshly installed sessions, and deleting a session
   stops its traffic.

     dune exec examples/pfcp_session_setup.exe
*)

let ran_ip = Netcore.Ipv4.addr_of_string "10.200.1.1"

let () =
  let capacity = 4096 in
  let n_pdrs = 8 in
  let worker = Gunfu.Worker.create ~id:0 () in
  let layout = Gunfu.Worker.layout worker in
  let upf = Nfs.Upf.create_empty layout ~name:"upf" ~capacity ~n_pdrs () in
  let smf = Nfs.Smf.create () in
  Printf.printf "empty UPF: capacity %d sessions x %d PDRs, %d installed\n\n" capacity
    n_pdrs upf.Nfs.Upf.n_active;

  (* N4: establish 1000 sessions. *)
  let n_sessions = 1000 in
  let ue i = Int32.of_int (0x64000000 lor i) in
  let first_seid = ref 0L in
  for i = 1 to n_sessions do
    match
      Nfs.Smf.establish smf upf ~ue_ip:(ue i) ~teid:(Int32.of_int (0x9000 + i)) ~ran_ip
    with
    | Ok seid -> if i = 1 then first_seid := seid
    | Error cause -> Printf.printf "session %d rejected: cause %d\n" i cause
  done;
  Printf.printf "SMF established %d sessions over PFCP (UPF active: %d)\n\n"
    (Nfs.Smf.n_established smf) upf.Nfs.Upf.n_active;

  (* Show one PFCP exchange on the wire. *)
  let request =
    Nfs.Smf.establishment_request smf ~ue_ip:(ue 2001) ~teid:0xAAAAl ~n_pdrs ~ran_ip
  in
  Printf.printf "a Session Establishment Request is %d bytes on the wire;\n"
    (String.length request);
  let response = Nfs.Upf.handle_pfcp upf request in
  (match Netcore.Pfcp.decode response with
  | { Netcore.Pfcp.payload = Netcore.Pfcp.Establishment_response r; _ } ->
      Printf.printf "UPF answered: cause=%d up_seid=%Ld\n\n" r.cause r.up_seid
  | _ -> ());

  (* Data plane: downlink packets to the installed UEs. *)
  let program = Nfs.Upf.program upf in
  let pool = Netcore.Packet.Pool.create layout ~count:512 in
  let rng = Memsim.Rng.create 5 in
  let source =
    Gunfu.Workload.limited 30_000 (fun () ->
        let i = 1 + Memsim.Rng.int rng n_sessions in
        let lo, hi = Traffic.Mgw.pdr_port_range ~n_pdrs ~pdr:(Memsim.Rng.int rng n_pdrs) in
        let flow =
          Netcore.Flow.make ~src_ip:0x08080808l ~dst_ip:(ue i)
            ~src_port:(Memsim.Rng.int_in_range rng ~lo ~hi)
            ~dst_port:(10000 + i) ~proto:Netcore.Ipv4.proto_udp
        in
        let pkt = Netcore.Packet.make ~flow ~wire_len:256 () in
        Netcore.Packet.Pool.assign pool pkt;
        { Gunfu.Workload.packet = Some pkt; aux = 0; flow_hint = i })
  in
  let run = Gunfu.Scheduler.run worker program ~n_tasks:16 source in
  Printf.printf "downlink through PFCP-installed sessions: %.2f Mpps, %d drops\n"
    (Gunfu.Metrics.mpps run) run.Gunfu.Metrics.drops;

  (* Tear one session down and show its traffic dying. *)
  let cause = Nfs.Smf.delete smf upf ~up_seid:!first_seid in
  Printf.printf "\ndeleted session (up_seid=%Ld): cause=%d\n" !first_seid cause;
  let lo, _ = Traffic.Mgw.pdr_port_range ~n_pdrs ~pdr:0 in
  let flow =
    Netcore.Flow.make ~src_ip:0x08080808l ~dst_ip:(ue 1) ~src_port:lo ~dst_port:10001
      ~proto:Netcore.Ipv4.proto_udp
  in
  let pkt = Netcore.Packet.make ~flow ~wire_len:256 () in
  Netcore.Packet.Pool.assign pool pkt;
  let item = { Gunfu.Workload.packet = Some pkt; aux = 0; flow_hint = 1 } in
  let r = Gunfu.Rtc.run worker program (Gunfu.Workload.total_items [ item ]) in
  Printf.printf "packet to the deleted session: %s\n"
    (if r.Gunfu.Metrics.drops = 1 then "dropped (as it must be)" else "FORWARDED (bug!)")
