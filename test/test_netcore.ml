(* Checksums, header codecs, flows, packets. *)

open Netcore

(* ----- checksum ----- *)

let test_checksum_rfc1071 () =
  (* Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d. *)
  let buf = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  Alcotest.(check int) "RFC1071 example" 0x220D (Checksum.of_bytes buf ~off:0 ~len:8)

let test_checksum_odd_length () =
  let buf = Bytes.of_string "\x01\x02\x03" in
  (* sum = 0x0102 + 0x0300 = 0x0402 -> cksum = 0xfbfd *)
  Alcotest.(check int) "odd length pads" 0xFBFD (Checksum.of_bytes buf ~off:0 ~len:3)

let test_checksum_valid () =
  let buf = Bytes.make 20 '\000' in
  Bytes.set buf 0 '\x45';
  Bytes.set buf 9 '\x11';
  let c = Checksum.of_bytes buf ~off:0 ~len:20 in
  Ethernet.put_u16 buf 10 c;
  Alcotest.(check bool) "range incl. checksum validates" true
    (Checksum.valid buf ~off:0 ~len:20)

let qcheck_incremental_update =
  QCheck.Test.make ~name:"incremental checksum == full recompute" ~count:300
    QCheck.(triple (list_of_size (Gen.return 10) (int_bound 0xFFFF)) (int_bound 9) (int_bound 0xFFFF))
    (fun (words, pos, new_field) ->
      let buf = Bytes.make 20 '\000' in
      List.iteri (fun i w -> Ethernet.put_u16 buf (i * 2) w) words;
      let old_csum = Checksum.of_bytes buf ~off:0 ~len:20 in
      let old_field = Ethernet.get_u16 buf (pos * 2) in
      Ethernet.put_u16 buf (pos * 2) new_field;
      let updated = Checksum.update ~old_csum ~old_field ~new_field in
      let recomputed = Checksum.of_bytes buf ~off:0 ~len:20 in
      (* Both are valid ones'-complement checksums of the new data; they may
         differ only in the 0x0000/0xFFFF representation. *)
      updated = recomputed || (updated land 0xFFFF) + (recomputed land 0xFFFF) = 0xFFFF
      || abs (updated - recomputed) = 0xFFFF)

(* Stronger than equality-modulo-representation: after any chain of field
   edits, the incrementally maintained checksum written back into the
   buffer must still validate the whole range. *)
let qcheck_incremental_chain =
  QCheck.Test.make ~name:"chained incremental updates keep the checksum valid"
    ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.return 10) (int_bound 0xFFFF))
        (small_list (pair (int_bound 9) (int_bound 0xFFFF))))
    (fun (words, edits) ->
      (* 10 data words followed by one trailing checksum word. *)
      let buf = Bytes.make 22 '\000' in
      List.iteri (fun i w -> Ethernet.put_u16 buf (i * 2) w) words;
      let csum = ref (Checksum.of_bytes buf ~off:0 ~len:20) in
      Ethernet.put_u16 buf 20 !csum;
      List.for_all
        (fun (pos, new_field) ->
          let old_field = Ethernet.get_u16 buf (pos * 2) in
          Ethernet.put_u16 buf (pos * 2) new_field;
          csum := Checksum.update ~old_csum:!csum ~old_field ~new_field;
          Ethernet.put_u16 buf 20 !csum;
          Checksum.valid buf ~off:0 ~len:22)
        edits)

(* ----- ethernet ----- *)

let test_mac_string_roundtrip () =
  let m = Ethernet.mac_of_string "02:42:ac:11:00:02" in
  Alcotest.(check string) "roundtrip" "02:42:ac:11:00:02" (Ethernet.mac_to_string m)

let test_ethernet_roundtrip () =
  let hdr = Ethernet.{ dst = 0x112233445566; src = 0xAABBCCDDEEFF; ethertype = 0x0800 } in
  let buf = Bytes.make 64 '\000' in
  Ethernet.encode hdr buf ~off:3;
  let d = Ethernet.decode buf ~off:3 in
  Alcotest.(check bool) "roundtrip" true (d = hdr)

(* ----- ipv4 ----- *)

let test_ipv4_addr_string () =
  let a = Ipv4.addr_of_string "192.168.1.200" in
  Alcotest.(check string) "roundtrip" "192.168.1.200" (Ipv4.addr_to_string a)

let test_ipv4_roundtrip () =
  let hdr =
    Ipv4.make ~ttl:17 ~ident:0x1234 ~src:(Ipv4.addr_of_string "10.0.0.1")
      ~dst:(Ipv4.addr_of_string "10.0.0.2") ~proto:Ipv4.proto_udp ~total_len:1400 ()
  in
  let buf = Bytes.make 64 '\000' in
  Ipv4.encode hdr buf ~off:0;
  let d = Ipv4.decode buf ~off:0 in
  Alcotest.(check bool) "fields roundtrip" true
    (Int32.equal d.Ipv4.src hdr.Ipv4.src
    && Int32.equal d.Ipv4.dst hdr.Ipv4.dst
    && d.Ipv4.proto = hdr.Ipv4.proto && d.Ipv4.ttl = 17 && d.Ipv4.total_len = 1400
    && d.Ipv4.ident = 0x1234)

let test_ipv4_checksum_valid () =
  let hdr =
    Ipv4.make ~src:(Ipv4.addr_of_string "1.2.3.4") ~dst:(Ipv4.addr_of_string "5.6.7.8")
      ~proto:6 ~total_len:40 ()
  in
  let buf = Bytes.make 64 '\000' in
  Ipv4.encode hdr buf ~off:8;
  Alcotest.(check bool) "header checksum valid" true (Ipv4.header_valid buf ~off:8)

let test_ipv4_rewrite_src_checksum () =
  let hdr =
    Ipv4.make ~src:(Ipv4.addr_of_string "10.1.1.1") ~dst:(Ipv4.addr_of_string "10.2.2.2")
      ~proto:17 ~total_len:100 ()
  in
  let buf = Bytes.make 64 '\000' in
  Ipv4.encode hdr buf ~off:0;
  Ipv4.rewrite_src buf ~off:0 ~src:(Ipv4.addr_of_string "203.0.113.7");
  Alcotest.(check string) "src rewritten" "203.0.113.7"
    (Ipv4.addr_to_string (Ipv4.decode buf ~off:0).Ipv4.src);
  Alcotest.(check bool) "checksum still valid" true (Ipv4.header_valid buf ~off:0)

let test_ipv4_rewrite_dst_checksum () =
  let hdr =
    Ipv4.make ~src:(Ipv4.addr_of_string "10.1.1.1") ~dst:(Ipv4.addr_of_string "10.2.2.2")
      ~proto:17 ~total_len:100 ()
  in
  let buf = Bytes.make 64 '\000' in
  Ipv4.encode hdr buf ~off:0;
  Ipv4.rewrite_dst buf ~off:0 ~dst:(Ipv4.addr_of_string "192.168.100.4");
  Alcotest.(check string) "dst rewritten" "192.168.100.4"
    (Ipv4.addr_to_string (Ipv4.decode buf ~off:0).Ipv4.dst);
  Alcotest.(check bool) "checksum still valid" true (Ipv4.header_valid buf ~off:0)

let test_ipv4_ttl_decrement () =
  let hdr =
    Ipv4.make ~ttl:2 ~src:1l ~dst:2l ~proto:17 ~total_len:40 ()
  in
  let buf = Bytes.make 64 '\000' in
  Ipv4.encode hdr buf ~off:0;
  Alcotest.(check bool) "decrement ok" true (Ipv4.decrement_ttl buf ~off:0);
  Alcotest.(check int) "ttl now 1" 1 (Ipv4.decode buf ~off:0).Ipv4.ttl;
  Alcotest.(check bool) "checksum still valid" true (Ipv4.header_valid buf ~off:0);
  ignore (Ipv4.decrement_ttl buf ~off:0);
  Alcotest.(check bool) "ttl 0 refuses" false (Ipv4.decrement_ttl buf ~off:0)

let qcheck_ipv4_roundtrip =
  QCheck.Test.make ~name:"ipv4 encode/decode roundtrip" ~count:300
    QCheck.(quad (int_bound 255) (int_bound 0xFFFF) small_int small_int)
    (fun (ttl, ident, s, d) ->
      let hdr =
        Ipv4.make ~ttl ~ident ~src:(Int32.of_int s) ~dst:(Int32.of_int d) ~proto:6
          ~total_len:60 ()
      in
      let buf = Bytes.make 32 '\000' in
      Ipv4.encode hdr buf ~off:0;
      let x = Ipv4.decode buf ~off:0 in
      x.Ipv4.ttl = ttl && x.Ipv4.ident = ident && Ipv4.header_valid buf ~off:0)

(* ----- L4 / GTP-U ----- *)

let test_udp_roundtrip () =
  let u = { L4.src_port = 5060; dst_port = 2152; length = 120 } in
  let buf = Bytes.make 16 '\000' in
  L4.encode_udp u buf ~off:0;
  let d = L4.decode_udp buf ~off:0 in
  Alcotest.(check bool) "roundtrip" true
    L4.(d.src_port = 5060 && d.dst_port = 2152 && d.length = 120)

let test_tcp_roundtrip () =
  let t =
    {
      L4.src_port = 443;
      dst_port = 51515;
      seq = 0xDEADBEEFl;
      ack_seq = 0x01020304l;
      flags = { L4.syn = true; ack = true; fin = false; rst = false };
      window = 4096;
    }
  in
  let buf = Bytes.make 32 '\000' in
  L4.encode_tcp t buf ~off:0;
  let d = L4.decode_tcp buf ~off:0 in
  Alcotest.(check bool) "roundtrip" true
    (d.L4.src_port = 443 && d.L4.dst_port = 51515
    && Int32.equal d.L4.seq 0xDEADBEEFl
    && d.L4.flags.L4.syn && d.L4.flags.L4.ack && (not d.L4.flags.L4.fin)
    && d.L4.window = 4096)

let test_port_rewrite () =
  let buf = Bytes.make 16 '\000' in
  L4.encode_udp { L4.src_port = 1000; dst_port = 2000; length = 8 } buf ~off:0;
  L4.rewrite_src_port buf ~off:0 ~port:33333;
  L4.rewrite_dst_port buf ~off:0 ~port:44444;
  Alcotest.(check int) "src port" 33333 (L4.src_port buf ~off:0);
  Alcotest.(check int) "dst port" 44444 (L4.dst_port buf ~off:0)

let test_gtpu_roundtrip () =
  let g = Gtpu.make ~teid:0xCAFE1234l ~length:512 () in
  let buf = Bytes.make 16 '\000' in
  Gtpu.encode g buf ~off:4;
  let d = Gtpu.decode buf ~off:4 in
  Alcotest.(check int32) "teid" 0xCAFE1234l d.Gtpu.teid;
  Alcotest.(check int) "length" 512 d.Gtpu.length;
  Alcotest.(check int) "msg type g-pdu" Gtpu.msg_gpdu d.Gtpu.msg_type

let test_gtpu_bad_version () =
  let buf = Bytes.make 16 '\xff' in
  Alcotest.check_raises "bad version rejected"
    (Invalid_argument "Gtpu.decode: unsupported version") (fun () ->
      ignore (Gtpu.decode buf ~off:0))

(* ----- flow ----- *)

let flow1 =
  Flow.make ~src_ip:(Ipv4.addr_of_string "10.0.0.1") ~dst_ip:(Ipv4.addr_of_string "10.0.0.2")
    ~src_port:1234 ~dst_port:80 ~proto:6

let test_flow_equal_key () =
  let f2 = Flow.make ~src_ip:flow1.Flow.src_ip ~dst_ip:flow1.Flow.dst_ip ~src_port:1234
      ~dst_port:80 ~proto:6 in
  Alcotest.(check bool) "equal flows" true (Flow.equal flow1 f2);
  Alcotest.(check int64) "equal keys" (Flow.key64 flow1) (Flow.key64 f2)

let test_flow_key_sensitivity () =
  let vary f = Alcotest.(check bool) "key differs" false (Int64.equal (Flow.key64 flow1) (Flow.key64 f)) in
  vary { flow1 with Flow.src_port = 1235 };
  vary { flow1 with Flow.dst_port = 81 };
  vary { flow1 with Flow.proto = 17 };
  vary { flow1 with Flow.src_ip = Ipv4.addr_of_string "10.0.0.3" }

let test_flow_reverse () =
  let r = Flow.reverse flow1 in
  Alcotest.(check bool) "reverse swaps" true
    (Int32.equal r.Flow.src_ip flow1.Flow.dst_ip && r.Flow.src_port = flow1.Flow.dst_port);
  Alcotest.(check bool) "double reverse identity" true (Flow.equal flow1 (Flow.reverse r))

let test_rss_range_and_stability () =
  for cores = 1 to 8 do
    let q = Flow.rss flow1 ~cores in
    Alcotest.(check bool) "in range" true (q >= 0 && q < cores);
    Alcotest.(check int) "deterministic" q (Flow.rss flow1 ~cores)
  done

let test_rss_spreads () =
  let counts = Array.make 4 0 in
  for i = 0 to 999 do
    let f = Flow.make ~src_ip:(Int32.of_int i) ~dst_ip:2l ~src_port:i ~dst_port:80 ~proto:6 in
    let q = Flow.rss f ~cores:4 in
    counts.(q) <- counts.(q) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "each queue gets 15-35%" true (c > 150 && c < 350))
    counts

(* ----- packet ----- *)

let test_packet_headers_match_flow () =
  let p = Packet.make ~flow:flow1 ~wire_len:128 () in
  Alcotest.(check bool) "headers encode the flow" true (Flow.equal flow1 (Packet.flow_of_headers p));
  Alcotest.(check int) "wire length" 128 p.Packet.wire_len;
  Alcotest.(check bool) "ip checksum valid" true (Ipv4.header_valid p.Packet.buf ~off:p.Packet.l3_off)

let test_packet_udp_flow () =
  let f = { flow1 with Flow.proto = Ipv4.proto_udp } in
  let p = Packet.make ~flow:f ~wire_len:64 () in
  Alcotest.(check bool) "udp headers roundtrip" true (Flow.equal f (Packet.flow_of_headers p))

let test_gtpu_encap_decap () =
  let f = { flow1 with Flow.proto = Ipv4.proto_udp } in
  let p = Packet.make ~flow:f ~wire_len:200 () in
  let before_len = p.Packet.wire_len in
  Packet.encapsulate_gtpu p ~outer_src:(Ipv4.addr_of_string "10.200.0.1")
    ~outer_dst:(Ipv4.addr_of_string "10.200.1.1") ~teid:0x42l;
  Alcotest.(check int) "wire grows by overhead" (before_len + Gtpu.encap_overhead)
    p.Packet.wire_len;
  let outer = Ipv4.decode p.Packet.buf ~off:Ethernet.header_bytes in
  Alcotest.(check int) "outer proto udp" Ipv4.proto_udp outer.Ipv4.proto;
  (* Inner flow is preserved behind the tunnel. *)
  Alcotest.(check bool) "inner flow intact" true (Flow.equal f (Packet.flow_of_headers p));
  let teid = Packet.decapsulate_gtpu p in
  Alcotest.(check int32) "teid recovered" 0x42l teid;
  Alcotest.(check int) "wire restored" before_len p.Packet.wire_len;
  Alcotest.(check bool) "flow restored" true (Flow.equal f (Packet.flow_of_headers p))

let test_pool_recycles () =
  let layout = Memsim.Layout.create () in
  let pool = Packet.Pool.create layout ~count:4 in
  let p = Packet.make ~flow:flow1 ~wire_len:64 () in
  let addrs =
    List.init 8 (fun _ ->
        Packet.Pool.assign pool p;
        p.Packet.sim_addr)
  in
  let distinct = List.sort_uniq compare addrs in
  Alcotest.(check int) "4 distinct buffers" 4 (List.length distinct);
  Alcotest.(check bool) "recycles in ring order" true
    (List.nth addrs 0 = List.nth addrs 4)

(* ----- parser robustness (truncation / garbage fuzz) ----- *)

(* A small valid capture to truncate: headers carry real bytes, so every
   prefix length exercises a different parser bounds check. *)
let valid_capture () =
  let w = Pcap.create_writer () in
  List.iteri
    (fun i f -> Pcap.add_packet w ~ts_us:(i * 10) (Packet.make ~flow:f ~wire_len:96 ()))
    [ flow1; { flow1 with Flow.src_port = 7 }; { flow1 with Flow.proto = Ipv4.proto_udp } ];
  Pcap.contents w

let qcheck_pcap_truncation =
  let cap = valid_capture () in
  QCheck.Test.make ~name:"pcap parse_result total under truncation" ~count:300
    QCheck.(int_bound (String.length cap - 1))
    (fun n ->
      (* Any strict prefix must yield a typed Error or a shorter Ok list —
         never an exception, and never all three records. *)
      match Pcap.parse_result (String.sub cap 0 n) with
      | Error _ -> true
      | Ok records -> List.length records < 3)

let qcheck_pcap_garbage =
  QCheck.Test.make ~name:"pcap parse_result total on garbage" ~count:300
    QCheck.(string_of_size (Gen.int_bound 64))
    (fun s -> match Pcap.parse_result s with Ok _ | Error _ -> true)

let qcheck_header_decoders_total =
  QCheck.Test.make ~name:"header decode_result never raises" ~count:500
    QCheck.(pair (string_of_size (Gen.int_bound 48)) (int_bound 52))
    (fun (s, off) ->
      let buf = Bytes.of_string s in
      (* Offsets past the end are in scope: a truncated capture can leave
         l3/l4 offsets beyond the valid bytes. *)
      (match Ipv4.decode_result buf ~off with Ok _ | Error _ -> ());
      (match L4.decode_udp_result buf ~off with Ok _ | Error _ -> ());
      (match L4.decode_tcp_result buf ~off with Ok _ | Error _ -> ());
      (match Nas.decode_result buf ~off with Ok _ | Error _ -> ());
      true)

let test_corrupted_packet_decoders () =
  (* Faultgen's packet mangler (truncate + scribble) is exactly what the
     executors feed the parsers under Corrupt_packet injection: the typed
     decoders must stay total on its output. *)
  let plan = Check.Faultgen.create ~seed:5 () in
  for index = 0 to 199 do
    let p = Packet.make ~flow:flow1 ~wire_len:128 () in
    Check.Faultgen.corrupt plan ~index p;
    (match Ipv4.decode_result p.Packet.buf ~off:p.Packet.l3_off with
    | Ok _ | Error _ -> ());
    (match L4.decode_udp_result p.Packet.buf ~off:p.Packet.l4_off with
    | Ok _ | Error _ -> ())
  done

let qcheck_packet_flow_roundtrip =
  QCheck.Test.make ~name:"packet headers always encode the flow" ~count:200
    QCheck.(quad small_int small_int (int_bound 65535) (int_bound 65535))
    (fun (s, d, sp, dp) ->
      let f =
        Flow.make ~src_ip:(Int32.of_int s) ~dst_ip:(Int32.of_int d) ~src_port:sp
          ~dst_port:dp ~proto:Ipv4.proto_udp
      in
      let p = Packet.make ~flow:f ~wire_len:128 () in
      Flow.equal f (Packet.flow_of_headers p))

let suite =
  [
    Alcotest.test_case "checksum RFC1071" `Quick test_checksum_rfc1071;
    Alcotest.test_case "checksum odd length" `Quick test_checksum_odd_length;
    Alcotest.test_case "checksum valid()" `Quick test_checksum_valid;
    Helpers.qcheck qcheck_incremental_update;
    Helpers.qcheck qcheck_incremental_chain;
    Alcotest.test_case "mac string roundtrip" `Quick test_mac_string_roundtrip;
    Alcotest.test_case "ethernet roundtrip" `Quick test_ethernet_roundtrip;
    Alcotest.test_case "ipv4 addr string" `Quick test_ipv4_addr_string;
    Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip;
    Alcotest.test_case "ipv4 checksum valid" `Quick test_ipv4_checksum_valid;
    Alcotest.test_case "ipv4 rewrite src" `Quick test_ipv4_rewrite_src_checksum;
    Alcotest.test_case "ipv4 rewrite dst" `Quick test_ipv4_rewrite_dst_checksum;
    Alcotest.test_case "ipv4 ttl decrement" `Quick test_ipv4_ttl_decrement;
    Helpers.qcheck qcheck_ipv4_roundtrip;
    Alcotest.test_case "udp roundtrip" `Quick test_udp_roundtrip;
    Alcotest.test_case "tcp roundtrip" `Quick test_tcp_roundtrip;
    Alcotest.test_case "port rewrite" `Quick test_port_rewrite;
    Alcotest.test_case "gtpu roundtrip" `Quick test_gtpu_roundtrip;
    Alcotest.test_case "gtpu bad version" `Quick test_gtpu_bad_version;
    Alcotest.test_case "flow equality/key" `Quick test_flow_equal_key;
    Alcotest.test_case "flow key sensitivity" `Quick test_flow_key_sensitivity;
    Alcotest.test_case "flow reverse" `Quick test_flow_reverse;
    Alcotest.test_case "rss range/stability" `Quick test_rss_range_and_stability;
    Alcotest.test_case "rss spreads" `Quick test_rss_spreads;
    Alcotest.test_case "packet headers match flow" `Quick test_packet_headers_match_flow;
    Alcotest.test_case "packet udp flow" `Quick test_packet_udp_flow;
    Alcotest.test_case "gtpu encap/decap" `Quick test_gtpu_encap_decap;
    Alcotest.test_case "pool recycles" `Quick test_pool_recycles;
    Helpers.qcheck qcheck_packet_flow_roundtrip;
    Helpers.qcheck qcheck_pcap_truncation;
    Helpers.qcheck qcheck_pcap_garbage;
    Helpers.qcheck qcheck_header_decoders_total;
    Alcotest.test_case "corrupted packets decode totally" `Quick
      test_corrupted_packet_decoders;
  ]
