(* Closed-loop adaptive runtime: the policy's decision table and its
   three hysteresis layers, driver inertness (a controller that never
   moves leaves the run byte-identical to an uncontrolled one), decision
   log determinism, the adaptive oracle axis (plain, faulted, SCR
   hand-off), the decision-log invariants' tamper resistance, and the
   committed BENCH_PR10.json's headline claim. *)

open Gunfu

(* ----- synthetic signals for the decision table ----- *)

let mk ?(i = 0) ?(pulls = 256) ?(kpps = 5000.0) ?(mem = 0.25) ?(deep = 0.0)
    ?(sw = 0.05) ?(occ = 1.0) ?(stalls = 0) ?(skew = 0.0) ?(imb = 1.0) () =
  {
    Adaptive.Window.w_index = i;
    w_pulls = pulls;
    w_completes = pulls;
    w_cycles = 100_000;
    w_kpps = kpps;
    w_mem_share = mem;
    w_deep_share = deep;
    w_switch_share = sw;
    w_mshr_occ = occ;
    w_active_occ = 4.0;
    w_fault_rate = 0.0;
    w_stalls = stalls;
    w_skew = skew;
    w_imbalance = imb;
  }

let label p = Adaptive.Config.label (Adaptive.Policy.config p)

let check_move name expected actual =
  Alcotest.(check (option string))
    name expected
    (Option.map Adaptive.Policy.move_label actual)

(* Default params: confirm = 2, cooldown = 1. One matching window holds
   (streak 1), the second fires, the window after is the cooldown. *)

let test_mem_up_widens () =
  let p = Adaptive.Policy.create ~initial:Adaptive.Config.default () in
  let hot i = mk ~i ~mem:0.5 ~deep:0.5 () in
  check_move "first hot window holds" None (Adaptive.Policy.decide p (hot 0));
  check_move "second fires tasks-up" (Some "tasks-up") (Adaptive.Policy.decide p (hot 1));
  Alcotest.(check string) "widened" "il-rr-16-d1" (label p);
  check_move "cooldown holds" None (Adaptive.Policy.decide p (hot 2));
  check_move "streak rebuilds" None (Adaptive.Policy.decide p (hot 3));
  check_move "then distance-up" (Some "distance-up") (Adaptive.Policy.decide p (hot 4));
  Alcotest.(check string) "deeper prefetch" "il-rr-16-d2" (label p)

let test_mem_down_to_batch () =
  let p =
    Adaptive.Policy.create
      ~initial:
        (Adaptive.Config.Il
           { policy = Scheduler.Round_robin; n_tasks = 2; distance = 1 })
      ()
  in
  let cold i = mk ~i ~mem:0.05 ~sw:0.2 () in
  check_move "first cold window holds" None (Adaptive.Policy.decide p (cold 0));
  check_move "minimum width collapses to batch" (Some "to-batch-32")
    (Adaptive.Policy.decide p (cold 1));
  Alcotest.(check string) "batched rtc" "batch-32" (label p);
  (* Memory pressure from batch re-enters the interleave no narrower than
     the default width, not at the 2-task width the march walked through. *)
  check_move "cooldown holds" None (Adaptive.Policy.decide p (mk ~i:2 ()));
  let hot i = mk ~i ~mem:0.5 ~deep:0.5 () in
  check_move "hot holds" None (Adaptive.Policy.decide p (hot 3));
  check_move "re-enters interleave" (Some "to-il-rr-8-d1")
    (Adaptive.Policy.decide p (hot 4));
  Alcotest.(check string) "floored re-entry" "il-rr-8-d1" (label p)

let test_stall_prefers_ready_first () =
  let p = Adaptive.Policy.create ~initial:Adaptive.Config.default () in
  (* Both the stall rule and mem-up match; stall-rf has priority. *)
  let s i = mk ~i ~mem:0.5 ~deep:0.5 ~stalls:3 () in
  check_move "holds" None (Adaptive.Policy.decide p (s 0));
  check_move "ready-first wins priority" (Some "policy-rf")
    (Adaptive.Policy.decide p (s 1));
  Alcotest.(check string) "switched" "il-rf-8-d1" (label p)

let test_scr_handoff_and_return () =
  let p = Adaptive.Policy.create ~scr:4 ~initial:Adaptive.Config.default () in
  let skewed i = mk ~i ~skew:0.5 ~imb:2.5 () in
  check_move "holds" None (Adaptive.Policy.decide p (skewed 0));
  check_move "hands off" (Some "scr-handoff") (Adaptive.Policy.decide p (skewed 1));
  Alcotest.(check string) "replicated" "scr-4" (label p);
  check_move "cooldown" None (Adaptive.Policy.decide p (skewed 2));
  let flat i = mk ~i ~skew:0.05 () in
  check_move "holds" None (Adaptive.Policy.decide p (flat 3));
  check_move "returns" (Some "scr-return") (Adaptive.Policy.decide p (flat 4));
  Alcotest.(check string) "back on the single core" "il-rr-8-d1" (label p)

let test_no_handoff_without_scr () =
  let p = Adaptive.Policy.create ~initial:Adaptive.Config.default () in
  let skewed i = mk ~i ~skew:0.9 ~imb:4.0 () in
  for i = 0 to 9 do
    check_move "never hands off" None (Adaptive.Policy.decide p (skewed i))
  done

(* Hysteresis layer 1: the deadband. A signal living between the low and
   high marks matches nothing. *)
let test_deadband_holds () =
  let p = Adaptive.Policy.create ~initial:Adaptive.Config.default () in
  for i = 0 to 39 do
    check_move "mid-band holds" None (Adaptive.Policy.decide p (mk ~i ~mem:0.25 ~sw:0.2 ()))
  done;
  Alcotest.(check string) "config untouched" "il-rr-8-d1" (label p)

(* Hysteresis layer 2: the confirmation streak. An oscillating signal
   resets the streak every other window and can never fire. *)
let test_oscillation_never_fires () =
  let p = Adaptive.Policy.create ~initial:Adaptive.Config.default () in
  for i = 0 to 39 do
    let s =
      if i mod 2 = 0 then mk ~i ~mem:0.5 ~deep:0.5 ()
      else mk ~i ~mem:0.05 ~sw:0.2 ()
    in
    check_move "oscillation holds" None (Adaptive.Policy.decide p s)
  done;
  Alcotest.(check string) "config untouched" "il-rr-8-d1" (label p)

(* Hysteresis layer 3: the throughput guard. A post-move regression
   beyond [regress] reverts the move and pins the rule for good. *)
let test_guard_reverts_and_pins () =
  let p = Adaptive.Policy.create ~initial:Adaptive.Config.default () in
  let hot i = mk ~i ~kpps:5000.0 ~mem:0.5 ~deep:0.5 () in
  check_move "holds" None (Adaptive.Policy.decide p (hot 0));
  check_move "fires" (Some "tasks-up") (Adaptive.Policy.decide p (hot 1));
  (* First full post-move window collapsed 40%: revert. *)
  check_move "guard reverts" (Some "revert")
    (Adaptive.Policy.decide p (mk ~i:2 ~kpps:3000.0 ~mem:0.5 ~deep:0.5 ()));
  Alcotest.(check string) "back to the pre-move config" "il-rr-8-d1" (label p);
  (* The offending rule is pinned: the same signal never fires it again. *)
  for i = 3 to 20 do
    check_move "pinned" None (Adaptive.Policy.decide p (hot i))
  done;
  Alcotest.(check string) "config stays" "il-rr-8-d1" (label p)

let test_saturated_knob_holds () =
  let p =
    Adaptive.Policy.create
      ~initial:
        (Adaptive.Config.Il
           { policy = Scheduler.Round_robin; n_tasks = 16; distance = 3 })
      ()
  in
  for i = 0 to 9 do
    check_move "everything maxed: hold" None
      (Adaptive.Policy.decide p (mk ~i ~mem:0.6 ~deep:0.6 ()))
  done

(* ----- driver: inertness ----- *)

(* Params no real signal can match: the controller is installed but can
   never propose a move. *)
let frozen =
  {
    Adaptive.Policy.default_params with
    Adaptive.Policy.hi_mem = 2.0;
    lo_mem = -1.0;
    hi_switch = 2.0;
    hi_occ = 1e18;
    hi_skew = 2.0;
    hi_imb = 1e18;
  }

type emit = {
  em_flow : int;
  em_aux : int;
  em_event : string;
  em_pktid : int;
  em_wire : int;
  em_pkt : string;
  em_clock : int;
}

(* A fresh single-core plant over a shared pre-traced stream, mirroring
   the oracle axis' delivery semantics. *)
let build_plant (rc : Check.Recovery.rcase) items =
  let plat = Platform.create ~cfg:rc.Check.Recovery.r_cfg ~cores:1 () in
  let worker = Platform.worker plat 0 in
  let full = Array.init rc.Check.Recovery.r_universe Fun.id in
  let ci = rc.Check.Recovery.r_build worker ~owned:full in
  let remaining = ref items in
  let source () =
    match !remaining with
    | [] -> None
    | (item : Workload.item) :: rest ->
        remaining := rest;
        let pkt = Option.map Netcore.Packet.clone item.Workload.packet in
        Option.iter (Netcore.Packet.Pool.assign ci.Check.Recovery.ci_pool) pkt;
        Some
          {
            Workload.packet = pkt;
            aux = item.Workload.aux;
            flow_hint = item.Workload.flow_hint;
          }
  in
  let ctx = Worker.ctx worker in
  let emits = ref [] in
  let on_complete (task : Nftask.t) =
    let em_pkt, em_pktid, em_wire =
      match task.Nftask.packet with
      | Some p ->
          (Check.Oracle.packet_fingerprint p, p.Netcore.Packet.id, p.Netcore.Packet.wire_len)
      | None -> ("", -1, 0)
    in
    emits :=
      {
        em_flow = task.Nftask.flow_hint;
        em_aux = task.Nftask.aux;
        em_event = Event.to_key task.Nftask.event;
        em_pktid;
        em_wire;
        em_pkt;
        em_clock = ctx.Exec_ctx.clock;
      }
      :: !emits
  in
  (worker, ci, source, on_complete, emits)

let test_inertness () =
  let rc = Check.Recovery.gen_rcase ~seed:17 ~profile:"mix" ~packets:600 in
  let items = rc.Check.Recovery.r_trace () in
  (* Uncontrolled: the engine invoked directly. *)
  let worker, ci, source, on_complete, emits = build_plant rc items in
  let bare =
    Scheduler.run ~policy:Scheduler.Round_robin ~prefetch_distance:1
      ~fault:(Fault.create ()) ~on_complete worker ci.Check.Recovery.ci_program
      ~n_tasks:8 source
  in
  let bare_emits = List.rev !emits in
  (* Controlled, but the policy can never move. *)
  let worker2, ci2, source2, on_complete2, emits2 = build_plant rc items in
  let policy =
    Adaptive.Policy.create ~params:frozen ~initial:Adaptive.Config.default ()
  in
  let oc =
    Adaptive.Driver.run ~epoch:64 ~on_complete:on_complete2 ~policy
      {
        Adaptive.Driver.pl_worker = worker2;
        pl_program = ci2.Check.Recovery.ci_program;
        pl_source = source2;
        pl_plane = Fault.create ();
        pl_scr = None;
      }
  in
  Alcotest.(check int) "no moves" 0 oc.Adaptive.Driver.o_moves;
  Alcotest.(check int) "one uninterrupted leg" 1 (List.length oc.Adaptive.Driver.o_legs);
  List.iter
    (fun (d : Adaptive.Driver.decision) ->
      Alcotest.(check bool) "every decision a hold" true (d.Adaptive.Driver.d_move = None))
    oc.Adaptive.Driver.o_decisions;
  (* Byte-identical observations: same emits in the same order with the
     same packet ids, bytes and clocks. *)
  Alcotest.(check int) "same emit count" (List.length bare_emits) (List.length (List.rev !emits2));
  Alcotest.(check bool) "byte-identical emit stream" true (bare_emits = List.rev !emits2);
  Alcotest.(check int) "same packets" bare.Metrics.packets oc.Adaptive.Driver.o_run.Metrics.packets;
  Alcotest.(check int) "same cycles" bare.Metrics.cycles oc.Adaptive.Driver.o_run.Metrics.cycles

(* ----- determinism ----- *)

let decision_key (d : Adaptive.Driver.decision) =
  Printf.sprintf "w%d@%d %s -> %s" d.Adaptive.Driver.d_index
    d.Adaptive.Driver.d_cycles
    (match d.Adaptive.Driver.d_move with
    | Some m -> Adaptive.Policy.move_label m
    | None -> "hold")
    (Adaptive.Config.label d.Adaptive.Driver.d_to)

let test_determinism () =
  let run () =
    let rc = Check.Recovery.gen_rcase ~seed:11 ~profile:"mix" ~packets:800 in
    Check.Adaptcheck.check_rcase ~epoch:96 ~initial:Adaptive.Config.Rtc rc
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "first passes" true (Check.Adaptcheck.passed a);
  Alcotest.(check bool) "second passes" true (Check.Adaptcheck.passed b);
  Alcotest.(check bool) "at least one move" true (a.Check.Adaptcheck.ao_moves > 0);
  Alcotest.(check (list string))
    "identical decision logs"
    (List.map decision_key a.Check.Adaptcheck.ao_decisions)
    (List.map decision_key b.Check.Adaptcheck.ao_decisions)

(* ----- the oracle axis ----- *)

let test_oracle_plain () =
  let rc = Check.Recovery.gen_rcase ~seed:23 ~profile:"uniform" ~packets:768 in
  let oc = Check.Adaptcheck.check_rcase ~epoch:96 rc in
  Alcotest.(check bool)
    (Format.asprintf "%a" Check.Adaptcheck.pp_outcome oc)
    true (Check.Adaptcheck.passed oc)

let test_oracle_faulted () =
  let rc = Check.Recovery.gen_rcase ~seed:29 ~profile:"burst" ~packets:640 in
  let plan = Check.Faultgen.create ~rate_ppm:30_000 ~seed:29 () in
  let oc = Check.Adaptcheck.check_rcase ~plan ~epoch:64 rc in
  Alcotest.(check bool)
    (Format.asprintf "%a" Check.Adaptcheck.pp_outcome oc)
    true (Check.Adaptcheck.passed oc)

let test_oracle_scr_handoff () =
  let rc = Check.Recovery.gen_rcase ~seed:13 ~profile:"zipf" ~packets:1024 in
  (* Aggressive skew marks so the zipf case hands off within a window. *)
  let params =
    {
      Adaptive.Policy.default_params with
      Adaptive.Policy.hi_skew = 0.05;
      lo_skew = 0.01;
      hi_imb = 1.1;
      confirm = 1;
    }
  in
  let oc = Check.Adaptcheck.check_rcase ~scr:4 ~params ~epoch:128 rc in
  Alcotest.(check bool)
    (Format.asprintf "%a" Check.Adaptcheck.pp_outcome oc)
    true (Check.Adaptcheck.passed oc);
  let handed_off =
    List.exists
      (fun (d : Adaptive.Driver.decision) ->
        match d.Adaptive.Driver.d_move with
        | Some Adaptive.Policy.Scr_handoff -> true
        | _ -> false)
      oc.Check.Adaptcheck.ao_decisions
  in
  Alcotest.(check bool) "the stream was handed off" true handed_off

let test_plan_and_scr_rejected () =
  let rc = Check.Recovery.gen_rcase ~seed:3 ~profile:"uniform" ~packets:64 in
  let plan = Check.Faultgen.create ~rate_ppm:10_000 ~seed:3 () in
  match Check.Adaptcheck.check_rcase ~plan ~scr:2 rc with
  | _ -> Alcotest.fail "plan + scr accepted"
  | exception Invalid_argument _ -> ()

(* ----- decision-log invariants: tamper resistance ----- *)

let rules vs =
  List.map (fun (v : Check.Invariants.violation) -> v.Check.Invariants.v_rule) vs

let test_tamper_detected () =
  let rc = Check.Recovery.gen_rcase ~seed:11 ~profile:"mix" ~packets:800 in
  let items = rc.Check.Recovery.r_trace () in
  let _, oc =
    Check.Adaptcheck.adaptive_pass ~epoch:96 ~initial:Adaptive.Config.Rtc ~items rc
  in
  Alcotest.(check (list string)) "clean before tampering" []
    (rules (Check.Invariants.check_adaptive oc));
  Alcotest.(check bool) "has a move to tamper with" true
    (oc.Adaptive.Driver.o_moves > 0);
  let flag name rule tampered =
    Alcotest.(check bool) name true
      (List.mem rule (rules (Check.Invariants.check_adaptive tampered)))
  in
  (* A move marked as landing at a non-quiescent boundary. *)
  flag "non-quiescent move flagged" "adaptive-quiescence"
    {
      oc with
      Adaptive.Driver.o_decisions =
        List.map
          (fun (d : Adaptive.Driver.decision) ->
            if d.Adaptive.Driver.d_move <> None then
              { d with Adaptive.Driver.d_quiescent = false }
            else d)
          oc.Adaptive.Driver.o_decisions;
    };
  (* A hold that silently changed the configuration. *)
  flag "hold changing the config flagged" "adaptive-chain"
    {
      oc with
      Adaptive.Driver.o_decisions =
        List.map
          (fun (d : Adaptive.Driver.decision) ->
            if d.Adaptive.Driver.d_move = None then
              {
                d with
                Adaptive.Driver.d_to =
                  (if Adaptive.Config.equal d.Adaptive.Driver.d_to Adaptive.Config.Rtc
                   then Adaptive.Config.default
                   else Adaptive.Config.Rtc);
              }
            else d)
          oc.Adaptive.Driver.o_decisions;
    };
  (* A move count that disagrees with the log. *)
  flag "move-count mismatch flagged" "adaptive-count"
    { oc with Adaptive.Driver.o_moves = oc.Adaptive.Driver.o_moves + 1 };
  (* A truncated log no longer matches the trace's Decision spans. *)
  flag "truncated log flagged" "adaptive-count"
    {
      oc with
      Adaptive.Driver.o_decisions = List.tl oc.Adaptive.Driver.o_decisions;
      o_moves =
        List.length
          (List.filter
             (fun (d : Adaptive.Driver.decision) -> d.Adaptive.Driver.d_move <> None)
             (List.tl oc.Adaptive.Driver.o_decisions));
    }

(* ----- the committed baseline's headline claim ----- *)

(* BENCH_PR10.json pins the adapt sweep; its aggregate row (x = 3.0) is
   the PR's acceptance claim: the controller beats every static
   configuration on total packets over total cycles. *)
let test_bench_headline () =
  let contents =
    let ic = open_in "../BENCH_PR10.json" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Telemetry.Baseline.of_string contents with
  | Error e -> Alcotest.failf "BENCH_PR10.json unreadable: %s" e
  | Ok b ->
      let fig =
        match
          List.find_opt
            (fun (f : Telemetry.Baseline.figure) -> f.Telemetry.Baseline.f_name = "adapt")
            b.Telemetry.Baseline.figures
        with
        | Some f -> f
        | None -> Alcotest.fail "no adapt figure in BENCH_PR10.json"
      in
      let aggregate (s : Telemetry.Baseline.series) =
        match
          List.find_opt
            (fun (p : Telemetry.Baseline.point) -> p.Telemetry.Baseline.x = 3.0)
            s.Telemetry.Baseline.points
        with
        | Some p -> List.assoc_opt "kpps" p.Telemetry.Baseline.metrics
        | None -> None
      in
      let kpps_of label =
        match
          List.find_opt
            (fun (s : Telemetry.Baseline.series) -> s.Telemetry.Baseline.s_label = label)
            fig.Telemetry.Baseline.series
        with
        | Some s -> aggregate s
        | None -> None
      in
      let adaptive =
        match kpps_of "adaptive" with
        | Some v -> v
        | None -> Alcotest.fail "no adaptive aggregate in BENCH_PR10.json"
      in
      let statics =
        List.filter
          (fun (s : Telemetry.Baseline.series) -> s.Telemetry.Baseline.s_label <> "adaptive")
          fig.Telemetry.Baseline.series
      in
      Alcotest.(check bool) "several static configurations pinned" true
        (List.length statics >= 5);
      List.iter
        (fun (s : Telemetry.Baseline.series) ->
          match aggregate s with
          | None -> Alcotest.failf "no aggregate for %s" s.Telemetry.Baseline.s_label
          | Some v ->
              if not (adaptive > v) then
                Alcotest.failf "adaptive %.0f kpps does not beat %s %.0f kpps"
                  adaptive s.Telemetry.Baseline.s_label v)
        statics

let suite =
  [
    Alcotest.test_case "mem-up widens then deepens" `Quick test_mem_up_widens;
    Alcotest.test_case "mem-down collapses to batch, re-entry floored" `Quick
      test_mem_down_to_batch;
    Alcotest.test_case "stalls prefer ready-first" `Quick test_stall_prefers_ready_first;
    Alcotest.test_case "scr hand-off and return" `Quick test_scr_handoff_and_return;
    Alcotest.test_case "no hand-off without scr" `Quick test_no_handoff_without_scr;
    Alcotest.test_case "deadband holds" `Quick test_deadband_holds;
    Alcotest.test_case "oscillation never fires" `Quick test_oscillation_never_fires;
    Alcotest.test_case "guard reverts and pins" `Quick test_guard_reverts_and_pins;
    Alcotest.test_case "saturated knobs hold" `Quick test_saturated_knob_holds;
    Alcotest.test_case "inert controller is byte-identical" `Quick test_inertness;
    Alcotest.test_case "decision log is deterministic" `Quick test_determinism;
    Alcotest.test_case "oracle: plain" `Quick test_oracle_plain;
    Alcotest.test_case "oracle: faulted" `Quick test_oracle_faulted;
    Alcotest.test_case "oracle: scr hand-off round trip" `Quick test_oracle_scr_handoff;
    Alcotest.test_case "plan + scr rejected" `Quick test_plan_and_scr_rejected;
    Alcotest.test_case "tampered decision log detected" `Quick test_tamper_detected;
    Alcotest.test_case "BENCH_PR10 headline: adaptive beats every static" `Quick
      test_bench_headline;
  ]
