(* Cuckoo hash, MDI tree, state arenas, data packing. *)

open Structures

let layout () = Memsim.Layout.create ()

(* ----- cuckoo ----- *)

let test_cuckoo_insert_lookup () =
  let t = Cuckoo.create (layout ()) ~label:"c" ~capacity:100 () in
  for i = 0 to 99 do
    Alcotest.(check bool) "insert ok" true (Cuckoo.insert t ~key:(Int64.of_int (i * 7)) ~value:i)
  done;
  for i = 0 to 99 do
    Alcotest.(check (option int)) "lookup" (Some i) (Cuckoo.lookup t (Int64.of_int (i * 7)))
  done;
  Alcotest.(check (option int)) "absent key" None (Cuckoo.lookup t 999999L)

let test_cuckoo_update () =
  let t = Cuckoo.create (layout ()) ~label:"c" ~capacity:10 () in
  ignore (Cuckoo.insert t ~key:5L ~value:1);
  ignore (Cuckoo.insert t ~key:5L ~value:2);
  Alcotest.(check (option int)) "updated in place" (Some 2) (Cuckoo.lookup t 5L);
  Alcotest.(check int) "population unchanged" 1 (Cuckoo.population t)

let test_cuckoo_delete () =
  let t = Cuckoo.create (layout ()) ~label:"c" ~capacity:10 () in
  ignore (Cuckoo.insert t ~key:5L ~value:1);
  Alcotest.(check bool) "delete present" true (Cuckoo.delete t 5L);
  Alcotest.(check (option int)) "gone" None (Cuckoo.lookup t 5L);
  Alcotest.(check bool) "delete absent" false (Cuckoo.delete t 5L);
  Alcotest.(check int) "population zero" 0 (Cuckoo.population t)

let test_cuckoo_displacement () =
  (* Fill to ~high load: displacement (kick) paths must engage and all
     entries remain findable. *)
  let n = 10_000 in
  let t = Cuckoo.create (layout ()) ~label:"c" ~capacity:n () in
  for i = 0 to n - 1 do
    let ok = Cuckoo.insert t ~key:(Int64.of_int (0x9E3779B9 * (i + 1))) ~value:i in
    Alcotest.(check bool) "insert under load" true ok
  done;
  Alcotest.(check bool) "load factor reasonable" true (Cuckoo.load_factor t > 0.5);
  for i = 0 to n - 1 do
    Alcotest.(check (option int)) "find after kicks" (Some i)
      (Cuckoo.lookup t (Int64.of_int (0x9E3779B9 * (i + 1))))
  done

let test_cuckoo_addrs_distinct_regions () =
  let l = layout () in
  let t = Cuckoo.create l ~label:"c" ~capacity:100 () in
  let b0 = Cuckoo.bucket_addr t 0 in
  let k0 = Cuckoo.key_addr t 0 in
  Alcotest.(check bool) "bucket and key lines differ" true (b0 / 64 <> k0 / 64);
  Alcotest.(check (option string)) "bucket region" (Some "c") (Memsim.Layout.region_of l b0);
  Alcotest.(check (option string)) "key region" (Some "c.keys") (Memsim.Layout.region_of l k0)

let test_cuckoo_candidates_superset () =
  let t = Cuckoo.create (layout ()) ~label:"c" ~capacity:1000 () in
  for i = 0 to 999 do
    ignore (Cuckoo.insert t ~key:(Int64.of_int (i + 1)) ~value:i)
  done;
  for i = 0 to 999 do
    let key = Int64.of_int (i + 1) in
    let b1 = Cuckoo.hash1 t key and b2 = Cuckoo.hash2 t key in
    let in_b1 = Cuckoo.find_in_bucket t ~bucket:b1 ~key in
    let in_b2 = Cuckoo.find_in_bucket t ~bucket:b2 ~key in
    let bucket = if in_b1 <> None then b1 else b2 in
    Alcotest.(check bool) "stored in one of its two buckets" true
      (in_b1 <> None || in_b2 <> None);
    (* The fingerprint scan must flag the bucket holding the key. *)
    Alcotest.(check bool) "candidates include the match" true
      (Cuckoo.candidates t ~bucket ~key <> [])
  done

let test_cuckoo_full_table () =
  (* A tiny table eventually refuses inserts instead of looping forever. *)
  let t = Cuckoo.create (layout ()) ~label:"c" ~capacity:4 () in
  let ok = ref 0 in
  for i = 1 to 64 do
    if Cuckoo.insert t ~key:(Int64.of_int i) ~value:i then incr ok
  done;
  Alcotest.(check bool) "some inserts rejected at saturation" true (!ok < 64);
  (* Every accepted key must still be present. *)
  Alcotest.(check int) "population equals accepted" !ok (Cuckoo.population t)

let qcheck_cuckoo_model =
  QCheck.Test.make ~name:"cuckoo agrees with Hashtbl model" ~count:60
    QCheck.(list_of_size (Gen.return 300) (pair (int_range 1 500) (int_bound 1000)))
    (fun ops ->
      let t = Cuckoo.create (layout ()) ~label:"c" ~capacity:600 () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          let key = Int64.of_int k in
          if v mod 5 = 0 then begin
            ignore (Cuckoo.delete t key);
            Hashtbl.remove model key
          end
          else if Cuckoo.insert t ~key ~value:v then Hashtbl.replace model key v)
        ops;
      Hashtbl.fold (fun k v acc -> acc && Cuckoo.lookup t k = Some v) model true)

(* Stepwise model agreement: after EVERY operation the table answers like
   the Hashtbl reference — present keys, never-inserted keys (misses),
   delete's return value, and the population count. *)
let qcheck_cuckoo_model_stepwise =
  QCheck.Test.make ~name:"cuckoo agrees with Hashtbl after every op" ~count:40
    QCheck.(list_of_size (Gen.return 200) (pair (int_range 1 400) (int_bound 1000)))
    (fun ops ->
      let t = Cuckoo.create (layout ()) ~label:"c" ~capacity:600 () in
      let model = Hashtbl.create 64 in
      List.for_all
        (fun (k, v) ->
          let key = Int64.of_int k in
          let op_ok =
            if v mod 5 = 0 then begin
              let in_model = Hashtbl.mem model key in
              let deleted = Cuckoo.delete t key in
              Hashtbl.remove model key;
              deleted = in_model
            end
            else begin
              if Cuckoo.insert t ~key ~value:v then Hashtbl.replace model key v;
              true
            end
          in
          op_ok
          && Cuckoo.lookup t key = Hashtbl.find_opt model key
          && Cuckoo.lookup t (Int64.of_int (k + 1000)) = None
          && Cuckoo.population t = Hashtbl.length model)
        ops)

(* ----- MDI tree ----- *)

let mk_rules n =
  List.init n (fun j ->
      {
        Mdi_tree.src_ip = Mdi_tree.full_range;
        src_port = Mdi_tree.range ~lo:(j * 100) ~hi:((j * 100) + 99);
        dst_port = Mdi_tree.full_range;
        proto = Mdi_tree.range ~lo:17 ~hi:17;
        value = j;
      })

let key ?(proto = 17) port =
  { Mdi_tree.k_src_ip = 1; k_src_port = port; k_dst_port = 80; k_proto = proto }

let test_mdi_lookup_all () =
  let t = Mdi_tree.create (layout ()) ~label:"m" ~rules:(mk_rules 16) () in
  for j = 0 to 15 do
    Alcotest.(check (option int)) "lo edge" (Some j) (Mdi_tree.lookup t (key (j * 100)));
    Alcotest.(check (option int)) "hi edge" (Some j) (Mdi_tree.lookup t (key ((j * 100) + 99)))
  done

let test_mdi_miss () =
  let t = Mdi_tree.create (layout ()) ~label:"m" ~rules:(mk_rules 4) () in
  Alcotest.(check (option int)) "above all ranges" None (Mdi_tree.lookup t (key 5000));
  Alcotest.(check (option int)) "wrong proto" None (Mdi_tree.lookup t (key ~proto:6 50))

let test_mdi_overlap_rejected () =
  let overlapping =
    [
      { Mdi_tree.src_ip = Mdi_tree.full_range; src_port = Mdi_tree.range ~lo:0 ~hi:10;
        dst_port = Mdi_tree.full_range; proto = Mdi_tree.full_range; value = 0 };
      { Mdi_tree.src_ip = Mdi_tree.full_range; src_port = Mdi_tree.range ~lo:5 ~hi:15;
        dst_port = Mdi_tree.full_range; proto = Mdi_tree.full_range; value = 1 };
    ]
  in
  Alcotest.check_raises "overlap rejected"
    (Invalid_argument "Mdi_tree.create: rules overlap on the discriminating dimension")
    (fun () -> ignore (Mdi_tree.create (layout ()) ~label:"m" ~rules:overlapping ()))

let test_mdi_depth_logarithmic () =
  let t = Mdi_tree.create (layout ()) ~label:"m" ~rules:(mk_rules 128) () in
  Alcotest.(check bool) "balanced depth" true (Mdi_tree.depth t <= 8);
  Alcotest.(check int) "size" 128 (Mdi_tree.size t)

let test_mdi_path_is_pointer_chase () =
  let t = Mdi_tree.create (layout ()) ~label:"m" ~rules:(mk_rules 64) () in
  let v, path = Mdi_tree.lookup_path t (key 3210) in
  Alcotest.(check (option int)) "found" (Some 32) v;
  Alcotest.(check bool) "path no longer than depth" true
    (List.length path <= Mdi_tree.depth t);
  (* Node addresses along the path are distinct cache lines. *)
  let lines = List.map (fun idx -> Mdi_tree.node_addr t idx / 64) path in
  Alcotest.(check int) "distinct lines" (List.length lines)
    (List.length (List.sort_uniq compare lines))

let test_mdi_step_semantics () =
  let t = Mdi_tree.create (layout ()) ~label:"m" ~rules:(mk_rules 8) () in
  match Mdi_tree.root t with
  | None -> Alcotest.fail "non-empty tree has a root"
  | Some root ->
      let rec walk node steps =
        Alcotest.(check bool) "bounded walk" true (steps < 10);
        match Mdi_tree.step t ~node (key 701) with
        | Mdi_tree.Found v -> v
        | Mdi_tree.Descend next -> walk next (steps + 1)
        | Mdi_tree.Miss -> Alcotest.fail "unexpected miss"
      in
      Alcotest.(check int) "step walk finds rule 7" 7 (walk root 0)

let test_mdi_empty () =
  let t = Mdi_tree.create (layout ()) ~label:"m" ~rules:[] () in
  Alcotest.(check (option int)) "no root" None (Mdi_tree.root t);
  Alcotest.(check (option int)) "lookup misses" None (Mdi_tree.lookup t (key 5))

let test_mdi_forest_distinct_members () =
  let f = Mdi_tree.Forest.create (layout ()) ~label:"f" ~rules:(mk_rules 4) ~members:10 () in
  let shape = Mdi_tree.Forest.shape f in
  (match Mdi_tree.root shape with
  | None -> Alcotest.fail "root expected"
  | Some root ->
      let addrs = List.init 10 (fun m -> Mdi_tree.Forest.node_addr f ~member:m root) in
      Alcotest.(check int) "per-member root lines distinct" 10
        (List.length (List.sort_uniq compare (List.map (fun a -> a / 64) addrs))));
  Alcotest.(check int) "members" 10 (Mdi_tree.Forest.members f)

let qcheck_mdi_vs_linear_scan =
  QCheck.Test.make ~name:"MDI lookup == linear rule scan" ~count:200
    QCheck.(pair (int_range 1 64) (int_bound 8000))
    (fun (n_rules, port) ->
      let rules = mk_rules n_rules in
      let t = Mdi_tree.create (layout ()) ~label:"m" ~rules () in
      let linear =
        List.find_opt
          (fun r ->
            port >= r.Mdi_tree.src_port.Mdi_tree.lo && port <= r.Mdi_tree.src_port.Mdi_tree.hi)
          rules
        |> Option.map (fun r -> r.Mdi_tree.value)
      in
      Mdi_tree.lookup t (key port) = linear)

(* ----- state arena ----- *)

let test_arena_addr_stride () =
  let a = State_arena.create (layout ()) ~label:"a" ~entry_bytes:8 ~count:10 () in
  Alcotest.(check int) "stride rounded to line" 64 (State_arena.stride a);
  Alcotest.(check int) "entry addresses stride apart" 64
    (State_arena.addr a 1 - State_arena.addr a 0);
  Alcotest.(check int) "one line per entry" 1 (State_arena.lines_per_entry a)

let test_arena_bounds () =
  let a = State_arena.create (layout ()) ~label:"a" ~entry_bytes:8 ~count:10 () in
  Alcotest.check_raises "negative index"
    (Invalid_argument "State_arena.addr: index out of range") (fun () ->
      ignore (State_arena.addr a (-1)));
  Alcotest.check_raises "index = count"
    (Invalid_argument "State_arena.addr: index out of range") (fun () ->
      ignore (State_arena.addr a 10))

let test_arena_record_fields () =
  let a =
    State_arena.create_record (layout ()) ~label:"r"
      ~field_offsets:[ ("x", 0); ("y", 16) ] ~record_bytes:32 ~count:4 ()
  in
  Alcotest.(check int) "field offset applied" 16
    (State_arena.field_addr a 0 "y" - State_arena.addr a 0);
  Alcotest.check_raises "unknown field"
    (Invalid_argument "State_arena.field_addr: unknown field z") (fun () ->
      ignore (State_arena.field_addr a 0 "z"))

let test_group_packing () =
  let g =
    State_arena.create_group (layout ()) ~label:"g"
      ~members:[ ("nat", 8); ("lb", 8); ("fw", 16); ("nm", 16) ] ~count:100 ()
  in
  let arena = State_arena.group_arena g in
  (* 48 bytes of state pack into one line per flow. *)
  Alcotest.(check int) "one line per flow" 64 (State_arena.stride arena);
  (* All members of flow 7 share that flow's line. *)
  let lines =
    List.map (fun m -> State_arena.group_addr g 7 m / 64) [ "nat"; "lb"; "fw"; "nm" ]
  in
  Alcotest.(check int) "single line" 1 (List.length (List.sort_uniq compare lines));
  Alcotest.(check int) "member size" 16 (State_arena.group_member_bytes g "fw")

let test_group_views () =
  let g =
    State_arena.create_group (layout ()) ~label:"g" ~members:[ ("a", 8); ("b", 8) ]
      ~count:10 ()
  in
  let va = State_arena.view g ~member:"a" in
  let vb = State_arena.view g ~member:"b" in
  Alcotest.(check int) "view addr = group addr" (State_arena.group_addr g 3 "a")
    (State_arena.addr va 3);
  Alcotest.(check int) "views offset by member" 8 (State_arena.addr vb 0 - State_arena.addr va 0);
  Alcotest.(check int) "view entry bytes" 8 (State_arena.entry_bytes vb);
  Alcotest.(check string) "view label derived" "g.a" (State_arena.label va)

(* ----- packing ----- *)

let fields =
  [
    { Packing.name = "a"; bytes = 16 };
    { Packing.name = "b"; bytes = 16 };
    { Packing.name = "c"; bytes = 16 };
    { Packing.name = "d"; bytes = 16 };
    { Packing.name = "e"; bytes = 16 };
    { Packing.name = "f"; bytes = 16 };
  ]

(* Two actions with disjoint field sets, interleaved in declaration
   order: sequential layout spreads each access over two lines; packing
   should give one line each. *)
let accesses =
  [
    { Packing.fields = [ "a"; "c"; "e" ]; weight = 1.0 };
    { Packing.fields = [ "b"; "d"; "f" ]; weight = 1.0 };
  ]

let no_overlap offsets sized =
  let spans =
    List.map (fun (n, off) -> (off, off + List.assoc n sized)) offsets
    |> List.sort compare
  in
  let rec ok = function
    | (_, e1) :: ((s2, _) :: _ as rest) -> e1 <= s2 && ok rest
    | _ -> true
  in
  ok spans

let sized = List.map (fun f -> (f.Packing.name, f.Packing.bytes)) fields

let test_sequential_layout () =
  let offsets, total = Packing.sequential fields in
  Alcotest.(check int) "all fields placed" 6 (List.length offsets);
  Alcotest.(check int) "dense total" 96 total;
  Alcotest.(check bool) "no overlap" true (no_overlap offsets sized)

let test_pack_reduces_lines () =
  let seq_offsets, _ = Packing.sequential fields in
  let packed_offsets, _ = Packing.pack ~line_bytes:64 fields accesses in
  Alcotest.(check bool) "packed has no overlap" true (no_overlap packed_offsets sized);
  Alcotest.(check int) "all fields placed" 6 (List.length packed_offsets);
  let cost layout = Packing.cost ~line_bytes:64 fields layout accesses in
  Alcotest.(check bool) "packing lowers expected lines" true
    (cost packed_offsets < cost seq_offsets);
  (* Each access fits in one 64-byte line after packing (3 x 16 = 48). *)
  List.iter
    (fun a ->
      Alcotest.(check int) "one line per access" 1
        (Packing.lines_touched ~line_bytes:64 fields packed_offsets a))
    accesses

let test_lines_touched () =
  let offsets = [ ("a", 0); ("b", 60) ] in
  let fs = [ { Packing.name = "a"; bytes = 8 }; { Packing.name = "b"; bytes = 8 } ] in
  (* a occupies line 0; b straddles lines 0 and 1 -> union {0, 1}. *)
  Alcotest.(check int) "field straddling a boundary counts both lines" 2
    (Packing.lines_touched ~line_bytes:64 fs offsets
       { Packing.fields = [ "a"; "b" ]; weight = 1.0 });
  Alcotest.(check int) "single in-line field is one line" 1
    (Packing.lines_touched ~line_bytes:64 fs offsets
       { Packing.fields = [ "a" ]; weight = 1.0 })

let qcheck_pack_no_overlap =
  let gen =
    QCheck.make
      QCheck.Gen.(
        list_size (int_range 1 12) (int_range 1 64) >>= fun sizes ->
        return (List.mapi (fun i b -> { Packing.name = Printf.sprintf "f%d" i; bytes = b }) sizes))
  in
  QCheck.Test.make ~name:"pack never overlaps fields and keeps them all" ~count:200 gen
    (fun fs ->
      let accesses =
        [ { Packing.fields = List.filteri (fun i _ -> i mod 2 = 0) (List.map (fun f -> f.Packing.name) fs); weight = 1.0 } ]
      in
      let offsets, total = Packing.pack ~line_bytes:64 fs accesses in
      let sized = List.map (fun f -> (f.Packing.name, f.Packing.bytes)) fs in
      List.length offsets = List.length fs
      && no_overlap offsets sized
      && List.for_all (fun (n, off) -> off + List.assoc n sized <= total) offsets)

let suite =
  [
    Alcotest.test_case "cuckoo insert/lookup" `Quick test_cuckoo_insert_lookup;
    Alcotest.test_case "cuckoo update" `Quick test_cuckoo_update;
    Alcotest.test_case "cuckoo delete" `Quick test_cuckoo_delete;
    Alcotest.test_case "cuckoo displacement" `Quick test_cuckoo_displacement;
    Alcotest.test_case "cuckoo address regions" `Quick test_cuckoo_addrs_distinct_regions;
    Alcotest.test_case "cuckoo candidates" `Quick test_cuckoo_candidates_superset;
    Alcotest.test_case "cuckoo full table" `Quick test_cuckoo_full_table;
    Helpers.qcheck qcheck_cuckoo_model;
    Helpers.qcheck qcheck_cuckoo_model_stepwise;
    Alcotest.test_case "mdi lookup all" `Quick test_mdi_lookup_all;
    Alcotest.test_case "mdi miss" `Quick test_mdi_miss;
    Alcotest.test_case "mdi overlap rejected" `Quick test_mdi_overlap_rejected;
    Alcotest.test_case "mdi depth" `Quick test_mdi_depth_logarithmic;
    Alcotest.test_case "mdi path pointer chase" `Quick test_mdi_path_is_pointer_chase;
    Alcotest.test_case "mdi step semantics" `Quick test_mdi_step_semantics;
    Alcotest.test_case "mdi empty" `Quick test_mdi_empty;
    Alcotest.test_case "mdi forest members" `Quick test_mdi_forest_distinct_members;
    Helpers.qcheck qcheck_mdi_vs_linear_scan;
    Alcotest.test_case "arena addr/stride" `Quick test_arena_addr_stride;
    Alcotest.test_case "arena bounds" `Quick test_arena_bounds;
    Alcotest.test_case "arena record fields" `Quick test_arena_record_fields;
    Alcotest.test_case "group packing" `Quick test_group_packing;
    Alcotest.test_case "group views" `Quick test_group_views;
    Alcotest.test_case "sequential layout" `Quick test_sequential_layout;
    Alcotest.test_case "pack reduces lines" `Quick test_pack_reduces_lines;
    Alcotest.test_case "lines_touched" `Quick test_lines_touched;
    Helpers.qcheck qcheck_pack_no_overlap;
  ]
