(* The machine-readable bench baseline (schema gunfu-bench-baseline/1):
   JSON round-trips losslessly, the collector preserves insertion order,
   rejects are errors not exceptions, and the exact-drift checker behind
   `bench --check-baseline` flags value/shape changes at 0.0 tolerance
   while waiving only the *values* of skip-listed wall-clock metrics. *)

open Telemetry

let sample () =
  let c = Baseline.collector () in
  Baseline.record c ~fig:"fig2" ~title:"UPF concurrency" ~series:"RTC" ~x:1.0
    [ ("mpps", 1.25); ("cycles_per_packet", 812.5) ];
  Baseline.record c ~fig:"fig2" ~title:"UPF concurrency" ~series:"RTC" ~x:2.0
    [ ("mpps", 1.5); ("cycles_per_packet", 700.0) ];
  Baseline.record c ~fig:"fig2" ~title:"UPF concurrency" ~series:"IL-16" ~x:1.0
    [ ("mpps", 3.75); ("cycles_per_packet", 300.25) ];
  Baseline.record c ~fig:"fig9" ~title:"context switches" ~series:"nftask" ~x:0.0
    [ ("switches_per_s", 7.5e8); ("ns_per_switch", 1.33) ];
  Baseline.to_baseline c ~pr:"PRX"

let test_schema_pinned () =
  Alcotest.(check string) "schema id" "gunfu-bench-baseline/1" Baseline.schema_id

let test_roundtrip () =
  let b = sample () in
  match Baseline.of_string (Baseline.to_string b) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok b' ->
      Alcotest.(check bool) "to_string |> of_string is the identity" true
        (Baseline.equal b b');
      (* Order is part of the schema: figures and series come back in
         insertion order. *)
      Alcotest.(check (list string)) "figure order" [ "fig2"; "fig9" ]
        (List.map (fun f -> f.Baseline.f_name) b'.Baseline.figures);
      let fig2 = List.hd b'.Baseline.figures in
      Alcotest.(check (list string)) "series order" [ "RTC"; "IL-16" ]
        (List.map (fun s -> s.Baseline.s_label) fig2.Baseline.series)

let test_committed_baseline_roundtrips () =
  (* The baseline committed at the repo root must parse under the current
     schema and survive a round-trip. *)
  let path = "../BENCH_PR4.json" in
  let contents =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Baseline.of_string contents with
  | Error e -> Alcotest.failf "committed BENCH_PR4.json does not parse: %s" e
  | Ok b ->
      Alcotest.(check string) "pr tag" "PR4" b.Baseline.pr;
      Alcotest.(check bool) "has figures" true (b.Baseline.figures <> []);
      (match Baseline.of_string (Baseline.to_string b) with
      | Ok b' -> Alcotest.(check bool) "round-trips" true (Baseline.equal b b')
      | Error e -> Alcotest.failf "re-parse failed: %s" e);
      Alcotest.(check (list string)) "self-diff is clean" []
        (Baseline.diff ~expected:b ~actual:b ~skip:(fun _ -> false) ())

let test_rejects () =
  List.iter
    (fun (label, s) ->
      match Baseline.of_string s with
      | Ok _ -> Alcotest.failf "%s accepted" label
      | Error _ -> ())
    [
      ("garbage", "not json");
      ("wrong shape", "[1,2,3]");
      ( "wrong schema",
        {|{"schema":"gunfu-bench-baseline/999","pr":"PRX","figures":[]}|} );
    ]

let no_skip = fun _ -> false

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let expect_drift label ~expected ~actual ~skip needle =
  match Baseline.diff ~expected ~actual ~skip () with
  | [] -> Alcotest.failf "%s: drift not detected" label
  | lines ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S mentions %S" label (String.concat "; " lines) needle)
        true
        (List.exists (fun l -> contains l needle) lines)

(* Rebuild the sample with one value nudged. *)
let tweaked delta =
  let b = sample () in
  {
    b with
    Baseline.figures =
      List.map
        (fun f ->
          if f.Baseline.f_name <> "fig2" then f
          else
            {
              f with
              Baseline.series =
                List.map
                  (fun s ->
                    if s.Baseline.s_label <> "RTC" then s
                    else
                      {
                        s with
                        Baseline.points =
                          List.map
                            (fun (p : Baseline.point) ->
                              if p.Baseline.x <> 1.0 then p
                              else
                                {
                                  p with
                                  Baseline.metrics =
                                    List.map
                                      (fun (k, v) ->
                                        if k = "mpps" then (k, v +. delta) else (k, v))
                                      p.Baseline.metrics;
                                })
                            s.Baseline.points;
                      })
                  f.Baseline.series;
            })
        b.Baseline.figures;
  }

let test_diff_exact_tolerance () =
  let b = sample () in
  Alcotest.(check (list string)) "identical baselines are clean" []
    (Baseline.diff ~expected:b ~actual:b ~skip:no_skip ());
  (* 0.0 tolerance: even an ulp-scale nudge is drift. *)
  expect_drift "tiny value drift" ~expected:b ~actual:(tweaked 1e-12) ~skip:no_skip
    "mpps";
  (* ... unless the metric is skip-listed. *)
  Alcotest.(check (list string)) "skip waives the value comparison" []
    (Baseline.diff ~expected:b ~actual:(tweaked 1e-12) ~skip:(fun k -> k = "mpps") ())

let test_diff_shapes () =
  let b = sample () in
  (* A partial run (subset of expected figures) is clean... *)
  let partial =
    { b with Baseline.figures = [ List.hd b.Baseline.figures ] }
  in
  Alcotest.(check (list string)) "partial run checks its slice" []
    (Baseline.diff ~expected:b ~actual:partial ~skip:no_skip ());
  (* ... but a figure the expected baseline has never seen is drift. *)
  let renamed =
    {
      b with
      Baseline.figures =
        List.map
          (fun f ->
            if f.Baseline.f_name = "fig9" then { f with Baseline.f_name = "fig99" }
            else f)
          b.Baseline.figures;
    }
  in
  expect_drift "unknown figure" ~expected:b ~actual:renamed ~skip:no_skip
    "not in expected baseline";
  (* Series label sets must match exactly. *)
  let dropped_series =
    {
      b with
      Baseline.figures =
        List.map
          (fun f ->
            if f.Baseline.f_name = "fig2" then
              { f with Baseline.series = [ List.hd f.Baseline.series ] }
            else f)
          b.Baseline.figures;
    }
  in
  expect_drift "missing series" ~expected:b ~actual:dropped_series ~skip:no_skip
    "series";
  (* Point counts per series must match. *)
  let dropped_point =
    {
      b with
      Baseline.figures =
        List.map
          (fun f ->
            {
              f with
              Baseline.series =
                List.map
                  (fun s ->
                    if s.Baseline.s_label = "RTC" then
                      { s with Baseline.points = [ List.hd s.Baseline.points ] }
                    else s)
                  f.Baseline.series;
            })
          b.Baseline.figures;
    }
  in
  expect_drift "missing point" ~expected:b ~actual:dropped_point ~skip:no_skip
    "points";
  (* A skip-listed metric's *presence* is still required. *)
  let key_dropped =
    {
      b with
      Baseline.figures =
        List.map
          (fun f ->
            {
              f with
              Baseline.series =
                List.map
                  (fun s ->
                    {
                      s with
                      Baseline.points =
                        List.map
                          (fun (p : Baseline.point) ->
                            {
                              p with
                              Baseline.metrics =
                                List.filter (fun (k, _) -> k <> "mpps") p.Baseline.metrics;
                            })
                          s.Baseline.points;
                    })
                  f.Baseline.series;
            })
          b.Baseline.figures;
    }
  in
  expect_drift "skip does not waive key presence" ~expected:b ~actual:key_dropped
    ~skip:(fun k -> k = "mpps") "metric keys"

let suite =
  [
    Alcotest.test_case "schema id pinned" `Quick test_schema_pinned;
    Alcotest.test_case "round-trip" `Quick test_roundtrip;
    Alcotest.test_case "committed BENCH_PR4.json round-trips" `Quick
      test_committed_baseline_roundtrips;
    Alcotest.test_case "malformed inputs rejected" `Quick test_rejects;
    Alcotest.test_case "diff: exact tolerance + skip" `Quick test_diff_exact_tolerance;
    Alcotest.test_case "diff: shape changes flagged" `Quick test_diff_shapes;
  ]
