(* State migration between NF instances and the spec-driven catalog. *)

open Gunfu

(* ----- NAT migration ----- *)

let two_nats () =
  let worker_a = Worker.create ~id:0 () in
  let worker_b = Worker.create ~id:1 () in
  let gen = Traffic.Flowgen.create ~seed:21 ~n_flows:512 ~size_model:(Traffic.Flowgen.Fixed 128) () in
  let flows = Traffic.Flowgen.flows gen in
  let nat_a = Nfs.Nat.create (Worker.layout worker_a) ~name:"a" ~n_flows:1024 () in
  Nfs.Nat.populate nat_a flows;
  let nat_b = Nfs.Nat.create (Worker.layout worker_b) ~name:"b" ~n_flows:1024 () in
  (* B starts empty. *)
  let pool_a = Netcore.Packet.Pool.create (Worker.layout worker_a) ~count:32 in
  let pool_b = Netcore.Packet.Pool.create (Worker.layout worker_b) ~count:32 in
  ( (worker_a, pool_a, nat_a, Nfs.Nat.program nat_a),
    (worker_b, pool_b, nat_b, Nfs.Nat.program nat_b),
    flows )

let translate (worker, pool, _nat, program) flow idx =
  let pkt = Netcore.Packet.make ~flow ~wire_len:96 () in
  Netcore.Packet.Pool.assign pool pkt;
  let r = Helpers.run_one worker program ~flow_hint:idx pkt in
  if r.Metrics.drops > 0 then None else Some (Netcore.Packet.flow_of_headers pkt)

let test_migration_preserves_mapping () =
  let a, b, flows = two_nats () in
  let migrate = [ flows.(3); flows.(7); flows.(11) ] in
  (* Observe the external mapping on A before migration. *)
  let before = List.map (fun f -> Option.get (translate a f 0)) migrate in
  let snapshot = Nfs.Migration.export_nat (let _, _, n, _ = a in n) migrate in
  Nfs.Migration.evict_nat (let _, _, n, _ = a in n) migrate;
  let imported = Nfs.Migration.import_nat (let _, _, n, _ = b in n) snapshot in
  Alcotest.(check int) "all entries imported" 3 imported;
  (* The source no longer serves these flows... *)
  List.iter
    (fun f -> Alcotest.(check bool) "evicted from source" true (translate a f 0 = None))
    migrate;
  (* ...and the target translates them to the *same* external endpoints. *)
  List.iteri
    (fun i f ->
      let after = Option.get (translate b f 0) in
      Alcotest.(check bool)
        (Printf.sprintf "external mapping preserved for flow %d" i)
        true
        (Netcore.Flow.equal (List.nth before i) after))
    migrate

let test_migration_untouched_flows_unaffected () =
  let a, _, flows = two_nats () in
  let keep = flows.(50) in
  let before = Option.get (translate a keep 0) in
  let snapshot = Nfs.Migration.export_nat (let _, _, n, _ = a in n) [ flows.(3) ] in
  Nfs.Migration.evict_nat (let _, _, n, _ = a in n) [ flows.(3) ];
  ignore snapshot;
  let after = Option.get (translate a keep 0) in
  Alcotest.(check bool) "unmigrated flow still served identically" true
    (Netcore.Flow.equal before after)

let test_migration_snapshot_roundtrip () =
  let a, _, flows = two_nats () in
  let _, _, nat_a, _ = a in
  let migrate = [ flows.(0); flows.(1) ] in
  let snapshot = Nfs.Migration.export_nat nat_a migrate in
  let entries = Nfs.Migration.parse_nat snapshot in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  List.iteri
    (fun i e ->
      Alcotest.(check int64) "key matches flow"
        (Netcore.Flow.key64 (List.nth migrate i))
        e.Nfs.Migration.key)
    entries

let test_migration_bad_snapshot () =
  let _, b, _ = two_nats () in
  let _, _, nat_b, _ = b in
  List.iter
    (fun s ->
      match Nfs.Migration.import_nat nat_b s with
      | exception Nfs.Migration.Bad_snapshot _ -> ()
      | _ -> Alcotest.fail "malformed snapshot accepted")
    [ ""; "XXXXX"; "GNAT1\xff\xff\xff\xff" ]

(* Full observable state of a target NAT, for checking the all-or-nothing
   import guarantee: a failed import must leave every one of these equal. *)
let nat_state (nat : Nfs.Nat.t) =
  ( nat.Nfs.Nat.next_free,
    Structures.Cuckoo.population (Nfs.Classifier.table nat.Nfs.Nat.classifier),
    Array.copy nat.Nfs.Nat.map_ip,
    Array.copy nat.Nfs.Nat.map_port,
    Array.copy nat.Nfs.Nat.keys )

let test_migration_bitflip_snapshot () =
  let a, b, flows = two_nats () in
  let _, _, nat_a, _ = a in
  let _, _, nat_b, _ = b in
  let snapshot = Nfs.Migration.export_nat nat_a [ flows.(3); flows.(7) ] in
  let before = nat_state nat_b in
  let accepted = ref 0 and rejected = ref 0 in
  for bit = 0 to (String.length snapshot * 8) - 1 do
    let mangled = Bytes.of_string snapshot in
    Bytes.set mangled (bit / 8)
      (Char.chr (Char.code snapshot.[bit / 8] lxor (1 lsl (bit mod 8))));
    match Nfs.Migration.import_nat nat_b (Bytes.to_string mangled) with
    | exception Nfs.Migration.Bad_snapshot _ ->
        incr rejected;
        Alcotest.(check bool) "rejected import leaves target unchanged" true
          (nat_state nat_b = before)
    | n ->
        (* A flip inside an entry body still parses; undo what it installed
           so each iteration starts from the same target state. *)
        incr accepted;
        let entries = Nfs.Migration.parse_nat (Bytes.to_string mangled) in
        (* Flips in the count field can shrink the entry list (2 -> 0);
           whatever parses is what must have been imported. *)
        Alcotest.(check int) "imported what parsed" (List.length entries) n;
        List.iter
          (fun e ->
            ignore
              (Structures.Cuckoo.delete
                 (Nfs.Classifier.table nat_b.Nfs.Nat.classifier)
                 e.Nfs.Migration.key))
          entries;
        let nf_before, _, ip_before, port_before, keys_before = before in
        for idx = nf_before to nat_b.Nfs.Nat.next_free - 1 do
          nat_b.Nfs.Nat.map_ip.(idx) <- ip_before.(idx);
          nat_b.Nfs.Nat.map_port.(idx) <- port_before.(idx);
          nat_b.Nfs.Nat.keys.(idx) <- keys_before.(idx)
        done;
        nat_b.Nfs.Nat.next_free <- nf_before
  done;
  (* Flips in the magic or count must reject; flips in entry bodies may
     legitimately parse — both classes have to occur over all positions. *)
  Alcotest.(check bool) "some flips rejected" true (!rejected > 0);
  Alcotest.(check bool) "some flips still parse" true (!accepted > 0)

let test_migration_target_full () =
  let a, _, flows = two_nats () in
  let _, _, nat_a, _ = a in
  (* A target whose mapping arena is exhausted: every slot allocated. *)
  let worker_c = Worker.create ~id:2 () in
  let nat_c = Nfs.Nat.create (Worker.layout worker_c) ~name:"c" ~n_flows:8 () in
  let gen = Traffic.Flowgen.create ~seed:77 ~n_flows:8 () in
  Nfs.Nat.populate nat_c (Traffic.Flowgen.flows gen);
  let snapshot = Nfs.Migration.export_nat nat_a [ flows.(1) ] in
  let before = nat_state nat_c in
  (match Nfs.Migration.import_nat nat_c snapshot with
  | exception Nfs.Migration.Bad_snapshot _ -> ()
  | _ -> Alcotest.fail "import into a full target must raise Bad_snapshot");
  Alcotest.(check bool) "full target unchanged" true (nat_state nat_c = before)

let test_migration_midway_rollback () =
  let a, _, flows = two_nats () in
  let _, _, nat_a, _ = a in
  (* Mapping slots free but the match table saturated: the capacity
     pre-check passes and the cuckoo insert fails mid-import, exercising
     the rollback path rather than the up-front rejection. *)
  let worker_c = Worker.create ~id:2 () in
  let nat_c = Nfs.Nat.create (Worker.layout worker_c) ~name:"c" ~n_flows:8 () in
  let table = Nfs.Classifier.table nat_c.Nfs.Nat.classifier in
  let cap = Structures.Cuckoo.nbuckets table * Structures.Cuckoo.slots_per_bucket in
  let k = ref 0x2000_0000 in
  while Structures.Cuckoo.population table < cap && !k < 0x2010_0000 do
    ignore (Structures.Cuckoo.insert table ~key:(Int64.of_int !k) ~value:1);
    incr k
  done;
  Alcotest.(check int) "match table saturated" cap (Structures.Cuckoo.population table);
  let snapshot = Nfs.Migration.export_nat nat_a [ flows.(2); flows.(9) ] in
  let before = nat_state nat_c in
  (match Nfs.Migration.import_nat nat_c snapshot with
  | exception Nfs.Migration.Bad_snapshot _ -> ()
  | _ -> Alcotest.fail "saturated match table must raise Bad_snapshot");
  Alcotest.(check bool) "mid-import failure rolled back" true
    (nat_state nat_c = before);
  List.iter
    (fun e ->
      Alcotest.(check bool) "no snapshot key left behind" true
        (Structures.Cuckoo.lookup table e.Nfs.Migration.key = None))
    (Nfs.Migration.parse_nat snapshot)

let test_monitor_migration () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let gen = Traffic.Flowgen.create ~seed:22 ~n_flows:64 () in
  let flows = Traffic.Flowgen.flows gen in
  let nm_a = Nfs.Monitor.create layout ~name:"ma" ~n_flows:64 () in
  Nfs.Monitor.populate nm_a flows;
  nm_a.Nfs.Monitor.pkt_count.(5) <- 42;
  nm_a.Nfs.Monitor.byte_count.(5) <- 9000;
  let snap = Nfs.Migration.export_monitor nm_a [ flows.(5) ] in
  let nm_b = Nfs.Monitor.create layout ~name:"mb" ~n_flows:64 () in
  Nfs.Monitor.populate nm_b flows;
  let n = Nfs.Migration.import_monitor nm_b ~flows snap in
  Alcotest.(check int) "one imported" 1 n;
  Alcotest.(check (pair int int)) "counters carried over" (42, 9000)
    (Nfs.Monitor.stats nm_b 5)

(* ----- snapshot fuzz batteries for the other stateful families -----

   Mirrors the NAT bit-flip battery: every single-bit corruption and every
   truncation of a snapshot must either raise [Bad_snapshot] leaving the
   target byte-identical, or import exactly what parses (and a
   family-specific [undo] restores the target, proving we know precisely
   what a successful import touched). *)

let fuzz_snapshot ~snapshot ~import ~state ~undo =
  let before = state () in
  (* truncation: every strict prefix rejects atomically *)
  for len = 0 to String.length snapshot - 1 do
    (match import (String.sub snapshot 0 len) with
    | exception Nfs.Migration.Bad_snapshot _ -> ()
    | _ -> Alcotest.failf "truncated snapshot (%d bytes) accepted" len);
    if state () <> before then
      Alcotest.failf "truncated import (%d bytes) perturbed the target" len
  done;
  (* bit flips: reject atomically, or import what parses and undo cleanly *)
  let accepted = ref 0 and rejected = ref 0 in
  for bit = 0 to (String.length snapshot * 8) - 1 do
    let mangled = Bytes.of_string snapshot in
    Bytes.set mangled (bit / 8)
      (Char.chr (Char.code snapshot.[bit / 8] lxor (1 lsl (bit mod 8))));
    let mangled = Bytes.to_string mangled in
    match import mangled with
    | exception Nfs.Migration.Bad_snapshot _ ->
        incr rejected;
        if state () <> before then
          Alcotest.failf "rejected import (bit %d) perturbed the target" bit
    | _n ->
        incr accepted;
        undo mangled;
        if state () <> before then
          Alcotest.failf "undo after accepted import (bit %d) did not restore" bit
  done;
  Alcotest.(check bool) "some flips rejected" true (!rejected > 0);
  Alcotest.(check bool) "some flips still parse" true (!accepted > 0)

let test_lb_snapshot_fuzz () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let gen = Traffic.Flowgen.create ~seed:31 ~n_flows:64 () in
  let flows = Traffic.Flowgen.flows gen in
  let lb_a = Nfs.Lb.create layout ~name:"lba" ~n_flows:64 () in
  Nfs.Lb.populate lb_a flows;
  let lb_b = Nfs.Lb.create layout ~name:"lbb" ~n_flows:64 () in
  let table_b = Nfs.Classifier.table lb_b.Nfs.Lb.classifier in
  let snapshot = Nfs.Migration.export_lb lb_a [ flows.(3); flows.(7) ] in
  let state () =
    ( lb_b.Nfs.Lb.next_free,
      Structures.Cuckoo.population table_b,
      Array.copy lb_b.Nfs.Lb.assignment )
  in
  let nf0, _, asg0 = state () in
  let undo mangled =
    let n = (String.length mangled - 9) / 10 in
    for i = 0 to n - 1 do
      ignore (Structures.Cuckoo.delete table_b (Nfs.Migration.get_u64 mangled (9 + (i * 10))))
    done;
    for idx = nf0 to lb_b.Nfs.Lb.next_free - 1 do
      lb_b.Nfs.Lb.assignment.(idx) <- asg0.(idx)
    done;
    lb_b.Nfs.Lb.next_free <- nf0
  in
  fuzz_snapshot ~snapshot ~import:(Nfs.Migration.import_lb lb_b) ~state ~undo

let test_firewall_snapshot_fuzz () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let gen = Traffic.Flowgen.create ~seed:32 ~n_flows:64 () in
  let flows = Traffic.Flowgen.flows gen in
  let fw_a = Nfs.Firewall.create layout ~name:"fwa" ~n_flows:64 () in
  Nfs.Firewall.populate fw_a flows;
  let fw_b = Nfs.Firewall.create layout ~name:"fwb" ~n_flows:64 () in
  let table_b = Nfs.Classifier.table fw_b.Nfs.Firewall.classifier in
  let snapshot = Nfs.Migration.export_firewall fw_a [ flows.(1); flows.(9) ] in
  let state () =
    ( fw_b.Nfs.Firewall.next_free,
      Structures.Cuckoo.population table_b,
      Array.copy fw_b.Nfs.Firewall.verdicts )
  in
  let nf0, _, v0 = state () in
  let undo mangled =
    let n = (String.length mangled - 9) / 9 in
    for i = 0 to n - 1 do
      ignore (Structures.Cuckoo.delete table_b (Nfs.Migration.get_u64 mangled (9 + (i * 9))))
    done;
    for idx = nf0 to fw_b.Nfs.Firewall.next_free - 1 do
      fw_b.Nfs.Firewall.verdicts.(idx) <- v0.(idx)
    done;
    fw_b.Nfs.Firewall.next_free <- nf0
  in
  fuzz_snapshot ~snapshot ~import:(Nfs.Migration.import_firewall fw_b) ~state ~undo

let test_classifier_snapshot_fuzz () =
  let layout = Memsim.Layout.create () in
  let mk name =
    Nfs.Classifier.create layout ~name ~key_kind:"flow"
      ~key_fn:(fun _ -> 0L)
      ~capacity:64 ()
  in
  let cls_a = mk "ca" and cls_b = mk "cb" in
  let src_keys = [ 0x1234L; 0x5678L; 0x9ABCL ] in
  List.iteri
    (fun i key -> ignore (Structures.Cuckoo.insert (Nfs.Classifier.table cls_a) ~key ~value:i))
    src_keys;
  (* resident target entries the fuzz must never disturb *)
  let probe = [ 0xFF01L; 0xFF02L ] in
  List.iteri
    (fun i key -> ignore (Structures.Cuckoo.insert (Nfs.Classifier.table cls_b) ~key ~value:(40 + i)))
    probe;
  let snapshot = Nfs.Migration.export_classifier cls_a src_keys in
  let table_b = Nfs.Classifier.table cls_b in
  let state () =
    ( Structures.Cuckoo.population table_b,
      List.map (Structures.Cuckoo.lookup table_b) probe )
  in
  let undo mangled =
    let n = (String.length mangled - 9) / 12 in
    for i = 0 to n - 1 do
      ignore (Structures.Cuckoo.delete table_b (Nfs.Migration.get_u64 mangled (9 + (i * 12))))
    done
  in
  fuzz_snapshot ~snapshot ~import:(Nfs.Migration.import_classifier cls_b) ~state ~undo

let test_upf_snapshot_fuzz () =
  let layout = Memsim.Layout.create () in
  let mk name = Nfs.Upf.create_empty layout ~name ~capacity:16 ~n_pdrs:4 () in
  let upf_a = mk "ua" and upf_b = mk "ub" in
  let install upf i =
    match
      Nfs.Upf.install_session upf ~ue_ip:(Traffic.Mgw.ue_ip_of_index i)
        ~teid:(Traffic.Mgw.teid_of_index i)
    with
    | Ok _ -> ()
    | Error c -> Alcotest.failf "setup: session %d rejected with cause %d" i c
  in
  install upf_a 0;
  install upf_a 1;
  (* resident target sessions, far (in Hamming distance) from the source's *)
  install upf_b 40;
  install upf_b 41;
  let snapshot =
    Nfs.Migration.export_upf upf_a
      [ Traffic.Mgw.ue_ip_of_index 0; Traffic.Mgw.ue_ip_of_index 1 ]
  in
  let state () =
    ( upf_b.Nfs.Upf.n_active,
      Structures.Cuckoo.population (Nfs.Classifier.table upf_b.Nfs.Upf.classifier),
      Structures.Cuckoo.population
        (Nfs.Classifier.table upf_b.Nfs.Upf.uplink_classifier),
      Array.copy upf_b.Nfs.Upf.sessions )
  in
  let na0, _, _, sess0 = state () in
  let undo mangled =
    let n = (String.length mangled - 9) / 8 in
    for i = 0 to n - 1 do
      ignore
        (Nfs.Upf.remove_session upf_b
           ~ue_ip:(Nfs.Migration.get_u32 mangled (9 + (i * 8))))
    done;
    for idx = na0 to upf_b.Nfs.Upf.n_active - 1 do
      upf_b.Nfs.Upf.sessions.(idx) <- sess0.(idx)
    done;
    upf_b.Nfs.Upf.n_active <- na0
  in
  fuzz_snapshot ~snapshot ~import:(Nfs.Migration.import_upf upf_b) ~state ~undo

(* ----- export -> scrub -> import preserves per-flow state (QCheck) -----

   For every Catalog family: exporting a random flow subset, evicting it,
   and importing the snapshot back must leave each flow's
   location-independent state digest identical — the property the recovery
   plane's checkpoint restore depends on. *)

let qcheck_family_roundtrip family name =
  (* setup is lazy so building this suite's test list stays cheap; the
     monitor family adopts into fresh slots on every import, so the bump
     arena is sized for all iterations (count x max subset). *)
  let ctx =
    lazy
      (let worker = Worker.create ~id:0 () in
       let layout = Worker.layout worker in
       let built =
         Nfs.Catalog.build layout
           ~nf:(Check.Progen.chain_spec [ family ])
           ~modules:(Lazy.force Check.Progen.builtin_modules)
           ~n_flows:1024 ()
       in
       let gen = Traffic.Flowgen.create ~seed:55 ~n_flows:64 () in
       let flows = Traffic.Flowgen.flows gen in
       built.Nfs.Catalog.populate flows;
       let sn =
         match built.Nfs.Catalog.snapshots with
         | [ sn ] -> sn
         | l ->
             Alcotest.failf "%s: expected one snapshotter, got %d" name
               (List.length l)
       in
       (sn, flows))
  in
  QCheck.Test.make
    ~name:(Printf.sprintf "export/scrub/import preserves %s flow digests" name)
    ~count:8
    QCheck.(list_of_size (Gen.int_range 1 24) (int_bound 63))
    (fun idxs ->
      let sn, flows = Lazy.force ctx in
      let idxs = List.sort_uniq compare idxs in
      let subset = List.map (fun i -> flows.(i)) idxs in
      let digest flow =
        Gunfu.Fingerprint.of_fn (fun fp -> sn.Nfs.Catalog.sn_flow_digest fp flow)
      in
      let before = List.map digest subset in
      let blob = sn.Nfs.Catalog.sn_export subset in
      sn.Nfs.Catalog.sn_evict subset;
      ignore (sn.Nfs.Catalog.sn_import blob);
      let after = List.map digest subset in
      before = after && String.equal blob (sn.Nfs.Catalog.sn_export subset))

(* ----- catalog ----- *)

let specs_dir = "../specs"

let test_catalog_builds_sfc4_from_files () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let built =
    Nfs.Catalog.build_from_files layout
      ~nf_file:(Filename.concat specs_dir "sfc4.yaml")
      ~specs_dir ~n_flows:1024 ()
  in
  Alcotest.(check (list string)) "NFs in chain order" [ "lb"; "nat"; "nm"; "fw1" ]
    built.Nfs.Catalog.nf_names;
  let gen = Traffic.Flowgen.create ~seed:23 ~n_flows:1024 ~size_model:(Traffic.Flowgen.Fixed 128) () in
  built.Nfs.Catalog.populate (Traffic.Flowgen.flows gen);
  let pool = Netcore.Packet.Pool.create layout ~count:64 in
  let r =
    Scheduler.run worker built.Nfs.Catalog.program ~n_tasks:8
      (Workload.of_flowgen gen ~pool ~count:500)
  in
  Alcotest.(check int) "traffic flows through the file-built chain" 500 r.Metrics.packets

let test_catalog_edited_fsm_drives_execution () =
  (* Remove the mapper's exit transition: compilation must fail — proving
     the on-disk FSM, not the built-in one, is what compiles. *)
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let nf = Spec.nf_spec_of_string (Nfs.Catalog.read_file (Filename.concat specs_dir "nat.yaml")) in
  let modules = Nfs.Catalog.load_modules specs_dir in
  let broken_mapper =
    Spec.module_spec_of_string
      "module: flow_mapper\ncategory: StatefulNF\ntransitions:\n- Start,MATCH_SUCCESS->flow_mapper\n- flow_mapper,packet->flow_mapper\n- flow_mapper,never->End\nfetching:\n  flow_mapper:\n  - mapping\nstates:\n  mapping: per_flow\n"
  in
  let modules = ("flow_mapper", broken_mapper) :: List.remove_assoc "flow_mapper" modules in
  let built = Nfs.Catalog.build layout ~nf ~modules ~n_flows:64 () in
  (* The edited FSM self-loops on "packet": the NF never completes a packet
     normally... run one packet under RTC with a step bound by checking it
     loops: instead verify the FSM shape changed. *)
  let cs = Program.cs_by_name built.Nfs.Catalog.program "nat_map.flow_mapper" in
  Alcotest.(check int) "edited transition target is the self-loop" cs
    (Program.step built.Nfs.Catalog.program cs Event.Packet_arrival)

let test_catalog_unknown_role () =
  let layout = Memsim.Layout.create () in
  let nf =
    Spec.nf_spec_of_string
      "nf: x\nmodules:\n  a_zzz: flow_classifier\ntransitions:\n- a_zzz,packet->End\n"
  in
  match Nfs.Catalog.build layout ~nf ~modules:(Nfs.Catalog.load_modules specs_dir) ~n_flows:16 () with
  | exception Nfs.Catalog.Catalog_error _ -> ()
  | _ -> Alcotest.fail "unknown role must be rejected"

let suite =
  [
    Alcotest.test_case "migration preserves mapping" `Quick test_migration_preserves_mapping;
    Alcotest.test_case "migration leaves others" `Quick test_migration_untouched_flows_unaffected;
    Alcotest.test_case "snapshot roundtrip" `Quick test_migration_snapshot_roundtrip;
    Alcotest.test_case "bad snapshot rejected" `Quick test_migration_bad_snapshot;
    Alcotest.test_case "bit-flipped snapshot contained" `Quick test_migration_bitflip_snapshot;
    Alcotest.test_case "full target import rejected atomically" `Quick
      test_migration_target_full;
    Alcotest.test_case "mid-import failure rolls back" `Quick test_migration_midway_rollback;
    Alcotest.test_case "monitor counters migrate" `Quick test_monitor_migration;
    Alcotest.test_case "catalog builds sfc4 from files" `Quick test_catalog_builds_sfc4_from_files;
    Alcotest.test_case "catalog: file FSM drives execution" `Quick
      test_catalog_edited_fsm_drives_execution;
    Alcotest.test_case "catalog unknown role" `Quick test_catalog_unknown_role;
    Alcotest.test_case "lb snapshot bit-flip/truncation fuzz" `Quick test_lb_snapshot_fuzz;
    Alcotest.test_case "firewall snapshot bit-flip/truncation fuzz" `Quick
      test_firewall_snapshot_fuzz;
    Alcotest.test_case "classifier snapshot bit-flip/truncation fuzz" `Quick
      test_classifier_snapshot_fuzz;
    Alcotest.test_case "upf snapshot bit-flip/truncation fuzz" `Quick test_upf_snapshot_fuzz;
    Helpers.qcheck (qcheck_family_roundtrip Check.Progen.F_nat "nat");
    Helpers.qcheck (qcheck_family_roundtrip Check.Progen.F_lb "lb");
    Helpers.qcheck (qcheck_family_roundtrip Check.Progen.F_fw "firewall");
    Helpers.qcheck (qcheck_family_roundtrip Check.Progen.F_nm "monitor");
  ]
