(* GuNFu-OCaml test runner: all suites. Run `dune runtest`; slow
   performance-relationship tests are included by default. *)

let () =
  Alcotest.run "gunfu"
    [
      ("rng", Test_rng.suite);
      ("cache", Test_cache.suite);
      ("hierarchy", Test_hierarchy.suite);
      ("layout", Test_layout.suite);
      ("netcore", Test_netcore.suite);
      ("traffic", Test_traffic.suite);
      ("structures", Test_structures.suite);
      ("spec", Test_spec.suite);
      ("nfc", Test_nfc.suite);
      ("model", Test_model.suite);
      ("compiler", Test_compiler.suite);
      ("runtime", Test_runtime.suite);
      ("nfs", Test_nfs.suite);
      ("platform", Test_platform.suite);
      ("extensions", Test_extensions.suite);
      ("dynamics", Test_dynamics.suite);
      ("spec-files", Test_spec_files.suite);
      ("latency", Test_latency.suite);
      ("scaleout", Test_scaleout.suite);
      ("scr", Test_scr.suite);
      ("calibration", Test_calibration.suite);
      ("pfcp", Test_pfcp.suite);
      ("nas", Test_nas.suite);
      ("exec-ctx", Test_exec_ctx.suite);
      ("qos", Test_qos.suite);
      ("lint", Test_lint.suite);
      ("oracle", Test_oracle.suite);
      ("invariants", Test_invariants.suite);
      ("fault", Test_fault.suite);
      ("telemetry", Test_telemetry.suite);
      ("specialize", Test_specialize.suite);
      ("recovery", Test_recovery.suite);
      ("storm", Test_storm.suite);
      ("verifyeq", Test_verifyeq.suite);
      ("adaptive", Test_adaptive.suite);
      ("baseline", Test_baseline.suite);
    ]
