(* Simulated address-space allocator. *)

open Memsim

let test_alignment () =
  let l = Layout.create () in
  let a = Layout.alloc l ~align:64 ~label:"x" ~bytes:10 () in
  Alcotest.(check int) "aligned to 64" 0 (a mod 64);
  let b = Layout.alloc l ~align:8 ~label:"y" ~bytes:8 () in
  Alcotest.(check int) "aligned to 8" 0 (b mod 8);
  Alcotest.(check bool) "above base" true (a >= Layout.base_addr)

let test_disjoint () =
  let l = Layout.create () in
  let a = Layout.alloc l ~label:"a" ~bytes:100 () in
  let b = Layout.alloc l ~label:"b" ~bytes:100 () in
  Alcotest.(check bool) "non-overlapping" true (b >= a + 100)

let test_region_of () =
  let l = Layout.create () in
  let a = Layout.alloc l ~label:"match" ~bytes:128 () in
  let b = Layout.alloc l ~label:"flow" ~bytes:64 () in
  Alcotest.(check (option string)) "inside first" (Some "match") (Layout.region_of l (a + 10));
  Alcotest.(check (option string)) "inside second" (Some "flow") (Layout.region_of l b);
  Alcotest.(check (option string)) "unmapped low" None (Layout.region_of l 0);
  Alcotest.(check (option string)) "unmapped high" None (Layout.region_of l (b + 64))

let test_label_merge () =
  let l = Layout.create () in
  let _ = Layout.alloc l ~label:"same" ~bytes:10 () in
  let b = Layout.alloc l ~label:"same" ~bytes:10 () in
  Alcotest.(check (option string)) "consecutive same-label merged" (Some "same")
    (Layout.region_of l b);
  Alcotest.(check int) "single region recorded" 1 (List.length (Layout.regions l))

let test_alloc_array () =
  let l = Layout.create () in
  let base = Layout.alloc_array l ~align:64 ~label:"arr" ~stride:96 ~count:10 () in
  Alcotest.(check int) "base aligned" 0 (base mod 64);
  Alcotest.(check (option string)) "last element mapped" (Some "arr")
    (Layout.region_of l (base + (9 * 96)));
  Alcotest.(check (option string)) "past the end unmapped" None
    (Layout.region_of l (base + (10 * 96)))

let test_used_bytes () =
  let l = Layout.create () in
  ignore (Layout.alloc l ~align:1 ~label:"a" ~bytes:100 ());
  Alcotest.(check bool) "usage tracked" true (Layout.used_bytes l >= 100)

let test_invalid () =
  let l = Layout.create () in
  Alcotest.check_raises "negative size" (Invalid_argument "Layout.alloc: negative size")
    (fun () -> ignore (Layout.alloc l ~label:"x" ~bytes:(-1) ()));
  Alcotest.check_raises "bad stride" (Invalid_argument "Layout.alloc_array") (fun () ->
      ignore (Layout.alloc_array l ~label:"x" ~stride:0 ~count:1 ()))

let qcheck_no_overlap =
  QCheck.Test.make ~name:"allocations never overlap" ~count:100
    QCheck.(list_of_size (Gen.int_range 2 30) (int_range 1 500))
    (fun sizes ->
      let l = Layout.create () in
      let spans =
        List.map (fun bytes -> (Layout.alloc l ~align:8 ~label:"q" ~bytes (), bytes)) sizes
      in
      let rec check = function
        | (a, sa) :: ((b, _) :: _ as rest) -> a + sa <= b && check rest
        | _ -> true
      in
      check spans)

let suite =
  [
    Alcotest.test_case "alignment" `Quick test_alignment;
    Alcotest.test_case "disjointness" `Quick test_disjoint;
    Alcotest.test_case "region_of" `Quick test_region_of;
    Alcotest.test_case "same-label merge" `Quick test_label_merge;
    Alcotest.test_case "alloc_array" `Quick test_alloc_array;
    Alcotest.test_case "used bytes" `Quick test_used_bytes;
    Alcotest.test_case "invalid input" `Quick test_invalid;
    Helpers.qcheck qcheck_no_overlap;
  ]
