(* NF model primitives: events, FSM, NFTask, prefetch targets, metrics. *)

open Gunfu

(* ----- events ----- *)

let test_event_roundtrip () =
  List.iter
    (fun e ->
      Alcotest.(check bool) ("roundtrip " ^ Event.to_key e) true
        (Event.equal e (Event.of_key (Event.to_key e))))
    [
      Event.Packet_arrival; Event.Match_success; Event.Match_fail; Event.Emit_packet;
      Event.Drop_packet; Event.User "hash_done";
    ]

let test_event_user_key () =
  Alcotest.(check string) "user event key" "tree_ready" (Event.to_key (Event.User "tree_ready"));
  Alcotest.(check bool) "of_key canonicalizes" true
    (Event.equal Event.Match_success (Event.of_key "MATCH_SUCCESS"))

(* ----- FSM ----- *)

let build_simple () =
  let b = Fsm.Builder.create () in
  let s0 = Fsm.Builder.add_state b "a" in
  let s1 = Fsm.Builder.add_state b "b" in
  let s2 = Fsm.Builder.add_state b "c" in
  Fsm.Builder.add_edge b ~src:s0 ~event:"go" ~dst:s1;
  Fsm.Builder.add_edge b ~src:s0 ~event:"skip" ~dst:s2;
  Fsm.Builder.add_edge b ~src:s1 ~event:"go" ~dst:s2;
  (Fsm.Builder.build b, s0, s1, s2)

let test_fsm_step () =
  let fsm, s0, s1, s2 = build_simple () in
  Alcotest.(check (option int)) "a --go--> b" (Some s1) (Fsm.step fsm s0 (Event.User "go"));
  Alcotest.(check (option int)) "a --skip--> c" (Some s2) (Fsm.step fsm s0 (Event.User "skip"));
  Alcotest.(check (option int)) "undefined transition" None (Fsm.step fsm s2 (Event.User "go"))

let test_fsm_add_state_idempotent () =
  let b = Fsm.Builder.create () in
  let x = Fsm.Builder.add_state b "x" in
  Alcotest.(check int) "same id on re-add" x (Fsm.Builder.add_state b "x")

let test_fsm_nondeterminism_rejected () =
  let b = Fsm.Builder.create () in
  let s0 = Fsm.Builder.add_state b "a" in
  let s1 = Fsm.Builder.add_state b "b" in
  let s2 = Fsm.Builder.add_state b "c" in
  Fsm.Builder.add_edge b ~src:s0 ~event:"go" ~dst:s1;
  match Fsm.Builder.add_edge b ~src:s0 ~event:"go" ~dst:s2 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "conflicting edge must be rejected"

let test_fsm_duplicate_edge_ok () =
  let b = Fsm.Builder.create () in
  let s0 = Fsm.Builder.add_state b "a" in
  let s1 = Fsm.Builder.add_state b "b" in
  Fsm.Builder.add_edge b ~src:s0 ~event:"go" ~dst:s1;
  Fsm.Builder.add_edge b ~src:s0 ~event:"go" ~dst:s1;
  let fsm = Fsm.Builder.build b in
  Alcotest.(check int) "one successor" 1 (List.length (Fsm.successors fsm s0))

let test_fsm_graph_queries () =
  let fsm, s0, s1, s2 = build_simple () in
  Alcotest.(check (list int)) "preds of c" [ s0; s1 ]
    (List.sort compare (Fsm.predecessors fsm s2));
  Alcotest.(check bool) "c terminal" true (Fsm.is_terminal fsm s2);
  Alcotest.(check bool) "a not terminal" false (Fsm.is_terminal fsm s0);
  Alcotest.(check (option int)) "index by name" (Some s1) (Fsm.index fsm "b");
  Alcotest.(check string) "name by index" "b" (Fsm.name fsm s1);
  Alcotest.(check int) "n_states" 3 (Fsm.n_states fsm)

(* ----- NFTask ----- *)

let test_nftask_load_resets () =
  let t = Nftask.create 3 in
  t.Nftask.matched <- 5;
  t.Nftask.sub_matched <- 7;
  t.Nftask.match_addrs <- [ (1, 2) ];
  t.Nftask.temps.Nftask.key <- 99L;
  t.Nftask.temps.Nftask.regs.(0) <- 42;
  Nftask.load t ~cs:2 ~aux:1 ~flow_hint:12 ();
  Alcotest.(check int) "cs set" 2 t.Nftask.cs;
  Alcotest.(check int) "matched reset" (-1) t.Nftask.matched;
  Alcotest.(check int) "sub_matched reset" (-1) t.Nftask.sub_matched;
  Alcotest.(check bool) "match addrs cleared" true (t.Nftask.match_addrs = []);
  Alcotest.(check int64) "key cleared" 0L t.Nftask.temps.Nftask.key;
  Alcotest.(check int) "regs cleared" 0 t.Nftask.temps.Nftask.regs.(0);
  Alcotest.(check int) "aux stored" 1 t.Nftask.aux;
  Alcotest.(check int) "flow hint stored" 12 t.Nftask.flow_hint;
  Alcotest.(check bool) "active" true t.Nftask.active

let test_nftask_retire () =
  let t = Nftask.create 0 in
  Nftask.load t ~cs:0 ();
  Nftask.retire t;
  Alcotest.(check bool) "inactive after retire" false t.Nftask.active;
  match Nftask.packet_exn t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "packet_exn on empty task must raise"

(* ----- prefetch targets ----- *)

let arena_a = lazy (Structures.State_arena.create (Memsim.Layout.create ()) ~label:"A" ~entry_bytes:8 ~count:10 ())
let arena_b = lazy (Structures.State_arena.create (Memsim.Layout.create ()) ~label:"B" ~entry_bytes:8 ~count:10 ())

let test_target_equality () =
  let a = Lazy.force arena_a and b = Lazy.force arena_b in
  Alcotest.(check bool) "same arena equal" true
    (Prefetch.equal_target (Prefetch.Per_flow (a, [])) (Prefetch.Per_flow (a, [])));
  Alcotest.(check bool) "different arena unequal" false
    (Prefetch.equal_target (Prefetch.Per_flow (a, [])) (Prefetch.Per_flow (b, [])));
  Alcotest.(check bool) "per-flow vs sub-flow unequal" false
    (Prefetch.equal_target (Prefetch.Per_flow (a, [])) (Prefetch.Sub_flow (a, [])));
  Alcotest.(check bool) "match_addrs equal" true
    (Prefetch.equal_target Prefetch.Match_addrs Prefetch.Match_addrs);
  Alcotest.(check bool) "packet header sizes" false
    (Prefetch.equal_target (Prefetch.Packet_header 32) (Prefetch.Packet_header 64))

let test_target_resolution () =
  let a = Lazy.force arena_a in
  let t = Nftask.create 0 in
  Nftask.load t ~cs:0 ();
  (* Unresolvable before a match. *)
  Alcotest.(check (list (pair int int))) "per-flow unresolved" []
    (Prefetch.resolve (Prefetch.Per_flow (a, [])) t);
  t.Nftask.matched <- 3;
  Alcotest.(check (list (pair int int))) "per-flow resolves to entry"
    [ (Structures.State_arena.addr a 3, 8) ]
    (Prefetch.resolve (Prefetch.Per_flow (a, [])) t);
  t.Nftask.match_addrs <- [ (0x100, 64); (0x200, 64) ];
  Alcotest.(check (list (pair int int))) "match addrs pass through"
    [ (0x100, 64); (0x200, 64) ]
    (Prefetch.resolve Prefetch.Match_addrs t);
  (* No packet: header target resolves empty rather than crashing. *)
  Alcotest.(check (list (pair int int))) "no packet -> empty" []
    (Prefetch.resolve (Prefetch.Packet_header 64) t)

let test_target_field_resolution () =
  let layout = Memsim.Layout.create () in
  let a =
    Structures.State_arena.create_record layout ~label:"R"
      ~field_offsets:[ ("x", 0); ("y", 32) ] ~record_bytes:64 ~count:4 ()
  in
  let t = Nftask.create 0 in
  Nftask.load t ~cs:0 ();
  t.Nftask.matched <- 2;
  Alcotest.(check (list (pair int int))) "field slices"
    [
      (Structures.State_arena.field_addr a 2 "x", 8);
      (Structures.State_arena.field_addr a 2 "y", 16);
    ]
    (Prefetch.resolve (Prefetch.Per_flow (a, [ ("x", 8); ("y", 16) ])) t)

(* ----- metrics ----- *)

let mk_run ?(cycles = 2_700_000) ?(packets = 1000) ?(wire = 64000) () =
  {
    Metrics.label = "t";
    packets;
    drops = 0;
    cycles;
    instrs = cycles / 2;
    wire_bytes = wire;
    switches = 0;
    mem = Memsim.Memstats.zero;
    freq_ghz = 2.7;
    state_cycles = Array.make Exec_ctx.n_classes 0;
    latency = None;
    faulted = 0;
    faults = [];
    degraded = false;
    imbalance = None;
  }

let test_metrics_math () =
  let r = mk_run () in
  (* 2.7e6 cycles at 2.7 GHz = 1 ms; 1000 packets -> 1 Mpps. *)
  Alcotest.(check (float 1e-6)) "mpps" 1.0 (Metrics.mpps r);
  (* 64000 bytes in 1 ms = 0.512 Gbps *)
  Alcotest.(check (float 1e-6)) "gbps" 0.512 (Metrics.gbps r);
  Alcotest.(check (float 1e-6)) "ipc" 0.5 (Metrics.ipc r);
  Alcotest.(check (float 1e-6)) "cycles per packet" 2700.0 (Metrics.cycles_per_packet r)

let test_metrics_line_rate_cap () =
  let r = mk_run ~cycles:27_000 ~wire:640_000 () in
  Alcotest.(check (float 1e-6)) "capped at line rate" 100.0
    (Metrics.gbps_scaled r ~cores:16)

let test_metrics_merge_parallel () =
  let a = mk_run ~cycles:1000 ~packets:10 ~wire:100 () in
  let b = mk_run ~cycles:2000 ~packets:20 ~wire:200 () in
  let m = Metrics.merge_parallel [ a; b ] in
  Alcotest.(check int) "packets sum" 30 m.Metrics.packets;
  Alcotest.(check int) "cycles max" 2000 m.Metrics.cycles;
  Alcotest.(check int) "wire sum" 300 m.Metrics.wire_bytes

let test_metrics_zero_safe () =
  let r = mk_run ~cycles:0 ~packets:0 ~wire:0 () in
  Alcotest.(check (float 0.0)) "mpps zero" 0.0 (Metrics.mpps r);
  Alcotest.(check (float 0.0)) "cyc/pkt zero" 0.0 (Metrics.cycles_per_packet r)

let suite =
  [
    Alcotest.test_case "event roundtrip" `Quick test_event_roundtrip;
    Alcotest.test_case "event user key" `Quick test_event_user_key;
    Alcotest.test_case "fsm step" `Quick test_fsm_step;
    Alcotest.test_case "fsm add_state idempotent" `Quick test_fsm_add_state_idempotent;
    Alcotest.test_case "fsm nondeterminism rejected" `Quick test_fsm_nondeterminism_rejected;
    Alcotest.test_case "fsm duplicate edge ok" `Quick test_fsm_duplicate_edge_ok;
    Alcotest.test_case "fsm graph queries" `Quick test_fsm_graph_queries;
    Alcotest.test_case "nftask load resets" `Quick test_nftask_load_resets;
    Alcotest.test_case "nftask retire" `Quick test_nftask_retire;
    Alcotest.test_case "target equality" `Quick test_target_equality;
    Alcotest.test_case "target resolution" `Quick test_target_resolution;
    Alcotest.test_case "target field resolution" `Quick test_target_field_resolution;
    Alcotest.test_case "metrics math" `Quick test_metrics_math;
    Alcotest.test_case "metrics line-rate cap" `Quick test_metrics_line_rate_cap;
    Alcotest.test_case "metrics merge parallel" `Quick test_metrics_merge_parallel;
    Alcotest.test_case "metrics zero safe" `Quick test_metrics_zero_safe;
  ]
