(* Executors: RTC baseline vs the interleaved scheduler — functional
   equivalence, accounting, and the performance relationships the paper's
   execution model predicts. *)

open Gunfu

let test_rtc_processes_all () =
  let s = Helpers.nat_setup () in
  let r = Rtc.run s.Helpers.worker s.Helpers.program (Helpers.nat_source s ~count:500) in
  Alcotest.(check int) "all packets completed" 500 r.Metrics.packets;
  Alcotest.(check int) "no drops" 0 r.Metrics.drops;
  Alcotest.(check bool) "cycles advanced" true (r.Metrics.cycles > 0);
  Alcotest.(check int) "wire bytes accounted" (500 * 128) r.Metrics.wire_bytes

let test_scheduler_processes_all () =
  let s = Helpers.nat_setup () in
  let r =
    Scheduler.run s.Helpers.worker s.Helpers.program ~n_tasks:16
      (Helpers.nat_source s ~count:500)
  in
  Alcotest.(check int) "all packets completed" 500 r.Metrics.packets;
  Alcotest.(check int) "no drops" 0 r.Metrics.drops;
  Alcotest.(check bool) "switches recorded" true (r.Metrics.switches > 500)

let test_scheduler_single_task () =
  let s = Helpers.nat_setup () in
  let r =
    Scheduler.run s.Helpers.worker s.Helpers.program ~n_tasks:1
      (Helpers.nat_source s ~count:100)
  in
  Alcotest.(check int) "single task completes everything" 100 r.Metrics.packets

let test_scheduler_more_tasks_than_packets () =
  let s = Helpers.nat_setup () in
  let r =
    Scheduler.run s.Helpers.worker s.Helpers.program ~n_tasks:64
      (Helpers.nat_source s ~count:10)
  in
  Alcotest.(check int) "completes with idle tasks" 10 r.Metrics.packets

let test_scheduler_empty_source () =
  let s = Helpers.nat_setup () in
  let r =
    Scheduler.run s.Helpers.worker s.Helpers.program ~n_tasks:8
      (Helpers.nat_source s ~count:0)
  in
  Alcotest.(check int) "empty source" 0 r.Metrics.packets

let test_invalid_n_tasks () =
  let s = Helpers.nat_setup () in
  List.iter
    (fun n_tasks ->
      match
        Scheduler.run s.Helpers.worker s.Helpers.program ~n_tasks
          (Helpers.nat_source s ~count:1)
      with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "n_tasks = %d must be rejected" n_tasks)
    [ 0; -1; -16 ]

(* One NFTask degenerates to run-to-completion: the completion stream must
   match RTC packet-for-packet — same order, same events, same sizes. *)
let test_single_task_matches_rtc_order () =
  let completions exec =
    let s = Helpers.nat_setup ~seed:9 () in
    let order = ref [] in
    let on_complete (t : Nftask.t) =
      let wire =
        match t.Nftask.packet with
        | Some p -> p.Netcore.Packet.wire_len
        | None -> 0
      in
      order := (t.Nftask.flow_hint, Event.to_key t.Nftask.event, wire) :: !order
    in
    let _ =
      exec ~on_complete s.Helpers.worker s.Helpers.program
        (Helpers.nat_source s ~count:300)
    in
    List.rev !order
  in
  let rtc = completions (fun ~on_complete w p src -> Rtc.run ~on_complete w p src) in
  let il =
    completions (fun ~on_complete w p src ->
        Scheduler.run ~on_complete w p ~n_tasks:1 src)
  in
  Alcotest.(check int) "same completion count" (List.length rtc) (List.length il);
  let i = ref 0 in
  List.iter2
    (fun ((rf, re, rw) as a) b ->
      if a <> b then Alcotest.failf "completion #%d differs: rtc (%d,%s,%d)" !i rf re rw;
      incr i)
    rtc il

(* Functional equivalence: both executors perform the same rewrites. *)
let test_models_equivalent_effects () =
  let run exec =
    let s = Helpers.nat_setup ~seed:7 () in
    let packets = ref [] in
    let base = Helpers.nat_source s ~count:200 in
    let tap () =
      match base () with
      | None -> None
      | Some item ->
          (match item.Workload.packet with Some p -> packets := p :: !packets | None -> ());
          Some item
    in
    let _ = exec s.Helpers.worker s.Helpers.program tap in
    List.rev_map Netcore.Packet.flow_of_headers !packets
  in
  let rtc_flows = run (fun w p src -> Rtc.run w p src) in
  let il_flows = run (fun w p src -> Scheduler.run w p ~n_tasks:16 src) in
  Alcotest.(check int) "same count" (List.length rtc_flows) (List.length il_flows);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "identical header rewrites" true (Netcore.Flow.equal a b))
    rtc_flows il_flows

let test_nat_rewrite_applied () =
  let s = Helpers.nat_setup () in
  let flow = Traffic.Flowgen.flow s.Helpers.gen 5 in
  let pkt = Netcore.Packet.make ~flow ~wire_len:128 () in
  Netcore.Packet.Pool.assign s.Helpers.pool pkt;
  let r = Helpers.run_one s.Helpers.worker s.Helpers.program pkt in
  Alcotest.(check int) "one packet" 1 r.Metrics.packets;
  let out = Netcore.Packet.flow_of_headers pkt in
  Alcotest.(check string) "source translated"
    (Netcore.Ipv4.addr_to_string s.Helpers.nat.Nfs.Nat.map_ip.(5))
    (Netcore.Ipv4.addr_to_string out.Netcore.Flow.src_ip);
  Alcotest.(check int) "port translated" s.Helpers.nat.Nfs.Nat.map_port.(5)
    out.Netcore.Flow.src_port;
  Alcotest.(check bool) "destination untouched" true
    (Int32.equal out.Netcore.Flow.dst_ip flow.Netcore.Flow.dst_ip);
  Alcotest.(check bool) "ip checksum remains valid" true
    (Netcore.Ipv4.header_valid pkt.Netcore.Packet.buf ~off:pkt.Netcore.Packet.l3_off)

let test_unknown_flow_dropped () =
  let s = Helpers.nat_setup () in
  (* A flow outside the populated universe: MATCH_FAIL -> drop. *)
  let stranger =
    Netcore.Flow.make ~src_ip:(Netcore.Ipv4.addr_of_string "172.16.99.99")
      ~dst_ip:(Netcore.Ipv4.addr_of_string "172.16.0.1") ~src_port:4999 ~dst_port:4999
      ~proto:17
  in
  let pkt = Netcore.Packet.make ~flow:stranger ~wire_len:64 () in
  Netcore.Packet.Pool.assign s.Helpers.pool pkt;
  let r = Helpers.run_one s.Helpers.worker s.Helpers.program pkt in
  Alcotest.(check int) "completed" 1 r.Metrics.packets;
  Alcotest.(check int) "dropped" 1 r.Metrics.drops;
  Alcotest.(check int) "dropped bytes not counted" 0 r.Metrics.wire_bytes

(* ----- the execution-model relationships (§VII-A) ----- *)

let measured ~n_tasks =
  let s = Helpers.nat_setup ~n_flows:65536 () in
  let count = 20_000 in
  if n_tasks = 0 then
    Rtc.run s.Helpers.worker s.Helpers.program (Helpers.nat_source s ~count)
  else
    Scheduler.run s.Helpers.worker s.Helpers.program ~n_tasks
      (Helpers.nat_source s ~count)

let test_interleaving_beats_rtc () =
  let rtc = measured ~n_tasks:0 in
  let il = measured ~n_tasks:16 in
  Alcotest.(check bool) "16 NFTasks at least 1.5x RTC" true
    (Metrics.mpps il > 1.5 *. Metrics.mpps rtc)

let test_single_task_overhead () =
  (* Fig 11: one NFTask is worse than RTC — scheduler overhead without
     overlap. *)
  let rtc = measured ~n_tasks:0 in
  let il1 = measured ~n_tasks:1 in
  Alcotest.(check bool) "1 NFTask slower than RTC" true
    (Metrics.mpps il1 < Metrics.mpps rtc)

let test_interleaving_reduces_misses () =
  let rtc = measured ~n_tasks:0 in
  let il = measured ~n_tasks:16 in
  Alcotest.(check bool) "fewer L1 misses per packet" true
    (Metrics.l1_misses_per_packet il < Metrics.l1_misses_per_packet rtc);
  Alcotest.(check bool) "LLC misses nearly eliminated" true
    (Metrics.llc_misses_per_packet il < 0.2 *. Metrics.llc_misses_per_packet rtc)

let test_interleaving_raises_ipc () =
  let rtc = measured ~n_tasks:0 in
  let il = measured ~n_tasks:16 in
  Alcotest.(check bool) "IPC improves" true (Metrics.ipc il > Metrics.ipc rtc)

let test_prefetches_issued_only_when_interleaving () =
  let rtc = measured ~n_tasks:0 in
  let il = measured ~n_tasks:16 in
  Alcotest.(check int) "RTC never prefetches" 0 rtc.Metrics.mem.Memsim.Memstats.prefetch_issued;
  Alcotest.(check bool) "scheduler prefetches" true
    (il.Metrics.mem.Memsim.Memstats.prefetch_issued > 0)

let test_ready_first_policy () =
  (* Same packets processed, same effects, and never slower at low task
     counts. *)
  let run policy =
    let s = Helpers.nat_setup ~n_flows:16384 ~seed:6 () in
    Scheduler.run ~policy s.Helpers.worker s.Helpers.program ~n_tasks:4
      (Helpers.nat_source s ~count:5000)
  in
  let rr = run Scheduler.Round_robin in
  let rf = run Scheduler.Ready_first in
  Alcotest.(check int) "same packet count" rr.Metrics.packets rf.Metrics.packets;
  Alcotest.(check int) "same drops" rr.Metrics.drops rf.Metrics.drops;
  Alcotest.(check bool) "ready-first not slower at 4 tasks" true
    (Metrics.mpps rf >= Metrics.mpps rr *. 0.98)

let test_state_access_share_drops () =
  let rtc = measured ~n_tasks:0 in
  let il = measured ~n_tasks:16 in
  let share r = Metrics.state_access_share r [ Sref.Match_state; Sref.Per_flow ] in
  Alcotest.(check bool) "state-access share shrinks under interleaving" true
    (share il < share rtc)

(* Property: for any traffic seed, every execution model produces the same
   observable per-flow effects (monitor accounting) — the execution model
   changes performance, never semantics. *)
let qcheck_models_semantically_equal =
  QCheck.Test.make ~name:"all execution models produce identical effects" ~count:8
    QCheck.(int_range 1 1000)
    (fun seed ->
      let run exec =
        let worker = Worker.create ~id:0 () in
        let layout = Worker.layout worker in
        let gen =
          Traffic.Flowgen.create ~seed ~n_flows:512
            ~size_model:(Traffic.Flowgen.Fixed 128) ()
        in
        let pool = Netcore.Packet.Pool.create layout ~count:64 in
        let nm = Nfs.Monitor.create layout ~name:"nm" ~n_flows:512 () in
        Nfs.Monitor.populate nm (Traffic.Flowgen.flows gen);
        let program = Nfs.Monitor.program nm in
        let _ = exec worker program (Workload.of_flowgen gen ~pool ~count:800) in
        Array.copy nm.Nfs.Monitor.pkt_count
      in
      let rtc = run (fun w p s -> Rtc.run w p s) in
      let il = run (fun w p s -> Scheduler.run w p ~n_tasks:16 s) in
      let batch = run (fun w p s -> Batch_rtc.run w p s) in
      let rf =
        run (fun w p s -> Scheduler.run ~policy:Scheduler.Ready_first w p ~n_tasks:16 s)
      in
      rtc = il && il = batch && batch = rf)

let suite =
  [
    Alcotest.test_case "rtc processes all" `Quick test_rtc_processes_all;
    Helpers.qcheck qcheck_models_semantically_equal;
    Alcotest.test_case "scheduler processes all" `Quick test_scheduler_processes_all;
    Alcotest.test_case "scheduler single task" `Quick test_scheduler_single_task;
    Alcotest.test_case "more tasks than packets" `Quick test_scheduler_more_tasks_than_packets;
    Alcotest.test_case "empty source" `Quick test_scheduler_empty_source;
    Alcotest.test_case "invalid n_tasks" `Quick test_invalid_n_tasks;
    Alcotest.test_case "single task matches rtc order" `Quick
      test_single_task_matches_rtc_order;
    Alcotest.test_case "models equivalent effects" `Quick test_models_equivalent_effects;
    Alcotest.test_case "nat rewrite applied" `Quick test_nat_rewrite_applied;
    Alcotest.test_case "unknown flow dropped" `Quick test_unknown_flow_dropped;
    Alcotest.test_case "interleaving beats RTC" `Slow test_interleaving_beats_rtc;
    Alcotest.test_case "single task overhead" `Slow test_single_task_overhead;
    Alcotest.test_case "interleaving reduces misses" `Slow test_interleaving_reduces_misses;
    Alcotest.test_case "interleaving raises IPC" `Slow test_interleaving_raises_ipc;
    Alcotest.test_case "prefetch accounting" `Slow test_prefetches_issued_only_when_interleaving;
    Alcotest.test_case "ready-first policy" `Slow test_ready_first_policy;
    Alcotest.test_case "state-access share drops" `Slow test_state_access_share_drops;
  ]
