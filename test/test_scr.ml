(* State-Compute Replication: the GUPD1 update wire format and applier,
   packet spraying, the SCR engine against its single-core reference
   (via the Scrcheck oracle axis), the stream-accounting invariant's
   tamper resistance, the imbalance metric, and the UPF session-install
   atomicity the update-apply surface depends on. *)

open Gunfu
open Scaleout

let specs_dir = "../specs"

(* ----- GUPD1 wire format ----- *)

let sample_record =
  {
    Update_log.u_flow = 12345;
    u_seq = 42;
    u_payload = [ ("nat", "\x00\x01binary\xffblob"); ("nm", "") ];
    u_consec = 3;
    u_poisoned = true;
  }

let qcheck_record =
  let open QCheck.Gen in
  let blob = string_size ~gen:(char_range '\x00' '\xff') (int_bound 64) in
  let name = string_size ~gen:printable (int_range 1 12) in
  let record =
    map
      (fun (flow, seq, payload, consec, poisoned) ->
        { Update_log.u_flow = flow; u_seq = seq; u_payload = payload; u_consec = consec; u_poisoned = poisoned })
      (tup5 (int_bound 1_000_000) (int_range 1 1_000_000)
         (list_size (int_bound 4) (pair name blob))
         (int_bound 1000) bool)
  in
  QCheck.make ~print:(fun r -> Printf.sprintf "flow=%d seq=%d blobs=%d" r.Update_log.u_flow r.Update_log.u_seq (List.length r.Update_log.u_payload)) record

let qcheck_roundtrip =
  QCheck.Test.make ~name:"GUPD1 encode/decode round-trip" ~count:500 qcheck_record
    (fun r -> Update_log.decode (Update_log.encode r) = r)

let test_encode_rejects_bad_fields () =
  Alcotest.check_raises "negative flow" (Invalid_argument "Update_log.encode: negative flow")
    (fun () -> ignore (Update_log.encode { sample_record with Update_log.u_flow = -1 }));
  Alcotest.check_raises "zero seq" (Invalid_argument "Update_log.encode: sequence must be positive")
    (fun () -> ignore (Update_log.encode { sample_record with Update_log.u_seq = 0 }))

let test_truncation_rejected () =
  let frame = Update_log.encode sample_record in
  for len = 0 to String.length frame - 1 do
    match Update_log.decode (String.sub frame 0 len) with
    | _ -> Alcotest.failf "truncation to %d bytes accepted" len
    | exception Update_log.Bad_update _ -> ()
  done

let test_bit_flips_rejected () =
  let frame = Update_log.encode sample_record in
  for byte = 0 to String.length frame - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string frame in
      Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
      match Update_log.decode (Bytes.to_string b) with
      | _ -> Alcotest.failf "flip of byte %d bit %d accepted" byte bit
      | exception Update_log.Bad_update _ -> ()
    done
  done;
  (* Trailing garbage is also framing corruption. *)
  match Update_log.decode (frame ^ "\x00") with
  | _ -> Alcotest.fail "trailing byte accepted"
  | exception Update_log.Bad_update _ -> ()

(* ----- applier semantics ----- *)

let record ~flow ~seq = { sample_record with Update_log.u_flow = flow; u_seq = seq }

let test_applier_monotone () =
  let applied = ref [] in
  let ap = Update_log.applier ~apply:(fun r -> applied := (r.Update_log.u_flow, r.Update_log.u_seq) :: !applied) in
  Alcotest.(check bool) "fresh record applies" true (Update_log.offer ap (record ~flow:1 ~seq:2));
  Alcotest.(check bool) "older is stale" false (Update_log.offer ap (record ~flow:1 ~seq:1));
  Alcotest.(check bool) "equal is stale" false (Update_log.offer ap (record ~flow:1 ~seq:2));
  Update_log.advance ap ~flow:1 ~seq:5;
  Alcotest.(check bool) "advance suppresses seq <= resident" false
    (Update_log.offer ap (record ~flow:1 ~seq:5));
  Alcotest.(check bool) "newer than advanced applies" true
    (Update_log.offer ap (record ~flow:1 ~seq:9));
  Alcotest.(check int) "resident tracks the max" 9 (Update_log.resident ap 1);
  Alcotest.(check int) "other flows independent" 0 (Update_log.resident ap 2);
  Alcotest.(check int) "applied count" 2 (Update_log.applied ap);
  Alcotest.(check int) "stale count" 3 (Update_log.stale ap);
  Alcotest.(check int) "max lag = 9 - 5" 4 (Update_log.max_lag ap);
  Alcotest.(check (list (pair int int))) "apply saw exactly the applied records"
    [ (1, 2); (1, 9) ] (List.rev !applied)

(* Absolute records + monotone application = order insensitivity: any
   permutation of an update set leaves every flow at its highest-seq
   payload. *)
let qcheck_order_insensitive =
  let open QCheck in
  Test.make ~name:"applier is permutation-insensitive" ~count:200
    (pair
       (list_of_size (Gen.int_range 1 40)
          (pair (int_bound 5) (make ~print:string_of_int (Gen.int_range 1 20))))
       (list_of_size (Gen.int_range 0 64) small_nat))
    (fun (pairs, shuffle_keys) ->
      let records = List.map (fun (flow, seq) -> record ~flow ~seq) pairs in
      let final rs =
        let state = Hashtbl.create 8 in
        let ap = Update_log.applier ~apply:(fun r -> Hashtbl.replace state r.Update_log.u_flow r.Update_log.u_seq) in
        List.iter (fun r -> ignore (Update_log.offer ap r : bool)) rs;
        List.sort compare (Hashtbl.fold (fun f s acc -> (f, s) :: acc) state [])
      in
      (* A deterministic pseudo-shuffle keyed by the generated ints. *)
      let shuffled =
        List.mapi (fun i r -> (i, r)) records
        |> List.sort (fun (i, _) (j, _) ->
               let k n = match List.nth_opt shuffle_keys (n mod max 1 (List.length shuffle_keys)) with Some v -> v | None -> n in
               compare (k i, i) (k j, j))
        |> List.map snd
      in
      let expected =
        List.fold_left
          (fun acc (flow, seq) ->
            let prev = Option.value ~default:0 (List.assoc_opt flow acc) in
            (flow, max prev seq) :: List.remove_assoc flow acc)
          [] pairs
        |> List.sort compare
      in
      final records = expected && final shuffled = expected)

(* ----- spray ----- *)

let items_of_hints hints =
  List.map (fun h -> { Workload.packet = None; aux = 0; flow_hint = h }) hints

let test_spray_dense_sequences () =
  let hints = [ 3; 1; 3; -1; 1; 3; 0; -1; 0 ] in
  let check policy =
    let slots = Spray.assign policy ~cores:4 (items_of_hints hints) in
    Alcotest.(check int) "one slot per item" (List.length hints) (Array.length slots);
    let seqs = Hashtbl.create 8 in
    List.iteri
      (fun g h ->
        let s = slots.(g) in
        Alcotest.(check bool) "core in range" true (s.Spray.s_core >= 0 && s.Spray.s_core < 4);
        if h < 0 then Alcotest.(check int) "hintless items carry seq 0" 0 s.Spray.s_seq
        else begin
          let expected = 1 + Option.value ~default:0 (Hashtbl.find_opt seqs h) in
          Alcotest.(check int) (Printf.sprintf "dense 1-based seq for flow %d" h)
            expected s.Spray.s_seq;
          Hashtbl.replace seqs h expected
        end)
      hints
  in
  check Spray.Round_robin;
  check (Spray.Seeded 5);
  let rr = Spray.assign Spray.Round_robin ~cores:4 (items_of_hints hints) in
  Array.iteri
    (fun g s -> Alcotest.(check int) "round-robin core = g mod cores" (g mod 4) s.Spray.s_core)
    rr;
  let a = Spray.assign (Spray.Seeded 5) ~cores:4 (items_of_hints hints) in
  let b = Spray.assign (Spray.Seeded 5) ~cores:4 (items_of_hints hints) in
  Alcotest.(check bool) "seeded spray is deterministic" true (a = b)

(* ----- SCR engine vs single-core reference (oracle pins) ----- *)

let check_passes name (oc : Check.Scrcheck.outcome) =
  if not (Check.Scrcheck.passed oc) then
    Alcotest.failf "%s: %s" name (Format.asprintf "%a" Check.Scrcheck.pp_outcome oc);
  Alcotest.(check bool) (name ^ ": replicas converged") true oc.Check.Scrcheck.so_converged

let test_generated_reference_equality () =
  let rc = Check.Recovery.gen_rcase ~seed:7 ~profile:"mix" ~packets:96 in
  check_passes "rtc cores=4" (Check.Scrcheck.check_rcase ~cores:4 rc);
  check_passes "seeded spray cores=3"
    (Check.Scrcheck.check_rcase ~spray:(Spray.Seeded 13) ~cores:3 rc);
  check_passes "batch8 cores=4"
    (Check.Scrcheck.check_rcase ~engine:(Scr.Engine_batch 8) ~cores:4 rc)

let test_generated_under_faults () =
  let rc = Check.Recovery.gen_rcase ~seed:11 ~profile:"zipf" ~packets:96 in
  let plan = Check.Faultgen.create ~rate_ppm:20_000 ~seed:11 () in
  check_passes "faulted rtc cores=4" (Check.Scrcheck.check_rcase ~plan ~cores:4 rc)

let test_spec_reference_equality () =
  let rc = Check.Recovery.spec_rcase ~specs_dir ~name:"nat" ~seed:3 ~packets:96 in
  check_passes "spec nat cores=4" (Check.Scrcheck.check_rcase ~cores:4 rc)

(* ----- update-stream accounting + tamper resistance ----- *)

let scr_result ~cores =
  let rc = Check.Recovery.gen_rcase ~seed:9 ~profile:"uniform" ~packets:64 in
  let items = rc.Check.Recovery.r_trace () in
  let pass, res = Check.Scrcheck.scr_pass ~items ~cores rc in
  let completions =
    List.fold_left
      (fun a (_, (o : Check.Oracle.observation)) ->
        a + List.length (List.filter (fun (e : Check.Oracle.emit) -> e.Check.Oracle.e_flow >= 0) o.Check.Oracle.o_emits))
      0 pass.Check.Recovery.p_obs
  in
  (completions, res)

let test_stream_accounting () =
  let cores = 4 in
  let completions, res = scr_result ~cores in
  let s = res.Scr.sr_stats in
  Alcotest.(check int) "one record per stateful completion" completions s.Scr.st_records;
  Alcotest.(check int) "records x (cores-1) fully accounted"
    (s.Scr.st_records * (cores - 1))
    (s.Scr.st_applied + s.Scr.st_coalesced + s.Scr.st_stale);
  Alcotest.(check bool) "barrier applies within applied" true
    (s.Scr.st_barrier_applied <= s.Scr.st_applied);
  Alcotest.(check bool) "converged" true res.Scr.sr_converged;
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun (v : Check.Invariants.violation) -> v.Check.Invariants.v_rule)
       (Check.Invariants.check_scr ~completions ~cores res))

let test_check_scr_catches_tampering () =
  let cores = 4 in
  let completions, res = scr_result ~cores in
  let rules doctored =
    List.map (fun (v : Check.Invariants.violation) -> v.Check.Invariants.v_rule)
      (Check.Invariants.check_scr ~completions ~cores doctored)
  in
  let with_stats st = { res with Scr.sr_stats = st } in
  Alcotest.(check bool) "missing record caught" true
    (List.mem "scr-emission"
       (rules (with_stats { res.Scr.sr_stats with Scr.st_records = res.Scr.sr_stats.Scr.st_records - 1 })));
  Alcotest.(check bool) "lost update caught" true
    (List.mem "scr-conservation"
       (rules (with_stats { res.Scr.sr_stats with Scr.st_applied = res.Scr.sr_stats.Scr.st_applied - 1 })));
  Alcotest.(check bool) "diverged replica caught" true
    (List.mem "scr-convergence"
       (rules
          {
            res with
            Scr.sr_converged = false;
            sr_replica_digests =
              (let d = Array.copy res.Scr.sr_replica_digests in
               d.(1) <- "doctored";
               d);
          }))

(* ----- imbalance metric ----- *)

let mk_run ~label ~packets ~drops =
  {
    Metrics.label;
    packets;
    drops;
    cycles = 1000;
    instrs = 800;
    wire_bytes = packets * 64;
    switches = 0;
    mem = Memsim.Memstats.zero;
    freq_ghz = 3.2;
    state_cycles = Array.make Exec_ctx.n_classes 0;
    latency = None;
    faulted = 0;
    faults = [];
    degraded = false;
    imbalance = None;
  }

let test_load_imbalance () =
  let runs = [ mk_run ~label:"a" ~packets:300 ~drops:100; mk_run ~label:"b" ~packets:100 ~drops:0 ] in
  let offered, served = Metrics.load_imbalance runs in
  Alcotest.(check (float 1e-9)) "offered max/mean" 1.5 offered;
  Alcotest.(check (float 1e-9)) "served max/mean" (200. /. 150.) served;
  let merged = Metrics.merge_parallel runs in
  (match merged.Metrics.imbalance with
  | Some (o, s) ->
      Alcotest.(check (float 1e-9)) "merged carries offered" 1.5 o;
      Alcotest.(check (float 1e-9)) "merged carries served" (200. /. 150.) s
  | None -> Alcotest.fail "merge_parallel dropped the imbalance ratios");
  (match (Metrics.merge_parallel [ mk_run ~label:"solo" ~packets:10 ~drops:0 ]).Metrics.imbalance with
  | None -> ()
  | Some _ -> Alcotest.fail "single-run merge must not fabricate imbalance");
  let balanced, _ = Metrics.load_imbalance [ mk_run ~label:"a" ~packets:5 ~drops:0; mk_run ~label:"b" ~packets:5 ~drops:0 ] in
  Alcotest.(check (float 1e-9)) "perfect balance is 1.0" 1.0 balanced

(* ----- UPF install_session atomicity (SCR apply depends on it) ----- *)

let test_install_session_atomic () =
  let worker = Worker.create ~id:0 () in
  let upf =
    Nfs.Upf.create_empty (Worker.layout worker) ~name:"upf" ~capacity:64 ~n_pdrs:4 ()
  in
  let up = Nfs.Classifier.table upf.Nfs.Upf.uplink_classifier in
  (* Saturate the uplink table with filler keys so its insert path fails. *)
  let filler = ref [] in
  (try
     for i = 0 to 10_000 do
       let key = Int64.of_int (0x10_000 + i) in
       if Structures.Cuckoo.insert up ~key ~value:0 then filler := key :: !filler
       else raise Exit
     done
   with Exit -> ());
  let ue_ip = Traffic.Mgw.ue_ip_of_index 7 in
  let teid = Traffic.Mgw.teid_of_index 7 in
  let down_key = Int64.logand (Int64.of_int32 ue_ip) 0xFFFFFFFFL in
  (match Nfs.Upf.install_session upf ~ue_ip ~teid with
  | Ok _ -> Alcotest.fail "install into a saturated uplink table succeeded"
  | Error cause -> Alcotest.(check int) "rejected as no-resources" Netcore.Pfcp.cause_no_resources cause);
  Alcotest.(check bool) "no downlink trace of the failed install" true
    (Structures.Cuckoo.lookup (Nfs.Classifier.table upf.Nfs.Upf.classifier) down_key = None);
  Alcotest.(check int) "n_active untouched" 0 upf.Nfs.Upf.n_active;
  (* Free space: the retry must succeed cleanly. *)
  List.iteri (fun i k -> if i < 32 then ignore (Structures.Cuckoo.delete up k : bool)) !filler;
  (match Nfs.Upf.install_session upf ~ue_ip ~teid with
  | Ok idx -> Alcotest.(check int) "retry lands in slot 0" 0 idx
  | Error c -> Alcotest.failf "retry rejected with cause %d" c);
  Alcotest.(check bool) "downlink route installed" true
    (Structures.Cuckoo.lookup (Nfs.Classifier.table upf.Nfs.Upf.classifier) down_key <> None)

let test_install_session_rejects_duplicate_teid () =
  let worker = Worker.create ~id:0 () in
  let upf =
    Nfs.Upf.create_empty (Worker.layout worker) ~name:"upf" ~capacity:64 ~n_pdrs:4 ()
  in
  let teid = Traffic.Mgw.teid_of_index 3 in
  (match Nfs.Upf.install_session upf ~ue_ip:(Traffic.Mgw.ue_ip_of_index 1) ~teid with
  | Ok _ -> ()
  | Error c -> Alcotest.failf "first install rejected with cause %d" c);
  (match Nfs.Upf.install_session upf ~ue_ip:(Traffic.Mgw.ue_ip_of_index 2) ~teid with
  | Ok _ -> Alcotest.fail "duplicate TEID accepted: uplink route silently stolen"
  | Error cause ->
      Alcotest.(check int) "rejected" Netcore.Pfcp.cause_request_rejected cause);
  Alcotest.(check int) "second session not installed" 1 upf.Nfs.Upf.n_active;
  let upkey = Int64.logand (Int64.of_int32 teid) 0xFFFFFFFFL in
  Alcotest.(check (option int)) "uplink route still owned by session 0" (Some 0)
    (Structures.Cuckoo.lookup (Nfs.Classifier.table upf.Nfs.Upf.uplink_classifier) upkey)

let suite =
  [
    Alcotest.test_case "GUPD1: encode rejects bad fields" `Quick test_encode_rejects_bad_fields;
    Alcotest.test_case "GUPD1: every truncation rejected" `Quick test_truncation_rejected;
    Alcotest.test_case "GUPD1: every single-bit flip rejected" `Quick test_bit_flips_rejected;
    Helpers.qcheck qcheck_roundtrip;
    Alcotest.test_case "applier: sequence-monotone application" `Quick test_applier_monotone;
    Helpers.qcheck qcheck_order_insensitive;
    Alcotest.test_case "spray: dense per-flow sequences" `Quick test_spray_dense_sequences;
    Alcotest.test_case "scr: generated programs match the reference" `Quick test_generated_reference_equality;
    Alcotest.test_case "scr: reference equality under faults" `Quick test_generated_under_faults;
    Alcotest.test_case "scr: spec composition matches the reference" `Quick test_spec_reference_equality;
    Alcotest.test_case "scr: update-stream accounting closes" `Quick test_stream_accounting;
    Alcotest.test_case "scr: invariant catches doctored results" `Quick test_check_scr_catches_tampering;
    Alcotest.test_case "metrics: load imbalance ratios" `Quick test_load_imbalance;
    Alcotest.test_case "upf: install_session is all-or-nothing" `Quick test_install_session_atomic;
    Alcotest.test_case "upf: duplicate TEID rejected" `Quick test_install_session_rejects_duplicate_teid;
  ]
