(* Churn-storm plane: the Mgw session-churn source and the Check.Storm
   chaos scenarios (PFCP storm, NAT rebalance churn, overload). *)

open Traffic

let event_tag = function
  | Mgw.Churn_teardown i -> Printf.sprintf "down:%d" i
  | Mgw.Churn_setup i -> Printf.sprintf "up:%d" i
  | Mgw.Churn_data (si, pdr, _) -> Printf.sprintf "data:%d.%d" si pdr

let trace_churn ~seed ~rate_ppm ~steps =
  let mgw = Mgw.create ~seed:7 ~n_sessions:24 ~n_pdrs:4 () in
  let c = Mgw.churn ~seed ~rate_ppm mgw in
  let tags = List.init steps (fun _ -> event_tag (Mgw.churn_next c)) in
  (c, tags)

let test_churn_deterministic () =
  let _, a = trace_churn ~seed:3 ~rate_ppm:200_000 ~steps:256 in
  let _, b = trace_churn ~seed:3 ~rate_ppm:200_000 ~steps:256 in
  Alcotest.(check (list string)) "same seed, same event stream" a b;
  let _, d = trace_churn ~seed:4 ~rate_ppm:200_000 ~steps:256 in
  Alcotest.(check bool) "different seed diverges" false (a = d)

let test_churn_rate_zero () =
  let c, tags = trace_churn ~seed:5 ~rate_ppm:0 ~steps:128 in
  List.iter
    (fun tag ->
      if not (String.length tag > 5 && String.sub tag 0 5 = "data:") then
        Alcotest.failf "rate 0 produced a churn event: %s" tag)
    tags;
  Alcotest.(check int) "no churn events" 0 (Mgw.churn_events c);
  Alcotest.(check int) "nothing down" 0 (Mgw.churn_down_count c)

let test_churn_rate_full () =
  (* rate 1e6: every step flips a session, none emits data *)
  let c, tags = trace_churn ~seed:6 ~rate_ppm:1_000_000 ~steps:128 in
  List.iter
    (fun tag ->
      if String.length tag > 5 && String.sub tag 0 5 = "data:" then
        Alcotest.fail "rate 1e6 emitted a data packet")
    tags;
  Alcotest.(check int) "every step churned" 128 (Mgw.churn_events c)

let test_churn_bookkeeping () =
  (* replay the event stream against an independent down-set model *)
  let mgw = Mgw.create ~seed:7 ~n_sessions:16 ~n_pdrs:4 () in
  let c = Mgw.churn ~seed:9 ~rate_ppm:400_000 mgw in
  let down = Hashtbl.create 16 in
  for step = 1 to 512 do
    (match Mgw.churn_next c with
    | Mgw.Churn_teardown i ->
        if Hashtbl.mem down i then
          Alcotest.failf "step %d: teardown of already-down session %d" step i;
        Hashtbl.replace down i ()
    | Mgw.Churn_setup i ->
        if not (Hashtbl.mem down i) then
          Alcotest.failf "step %d: setup of live session %d" step i;
        Hashtbl.remove down i
    | Mgw.Churn_data _ -> ());
    if Mgw.churn_down_count c <> Hashtbl.length down then
      Alcotest.failf "step %d: down_count %d, model says %d" step
        (Mgw.churn_down_count c) (Hashtbl.length down)
  done;
  for i = 0 to 15 do
    Alcotest.(check bool)
      (Printf.sprintf "churn_live %d agrees" i)
      (not (Hashtbl.mem down i))
      (Mgw.churn_live c i)
  done;
  Alcotest.(check bool) "storm actually churned" true (Mgw.churn_events c > 0)

let check_report r =
  if not (Check.Storm.passed r) then
    Alcotest.failf "%s failed:@.%a" r.Check.Storm.st_name Check.Storm.pp_report r

let test_pfcp_storm () = check_report (Check.Storm.pfcp_storm ~seed:11 ())
let test_nat_storm () = check_report (Check.Storm.nat_rebalance_storm ~seed:11 ())
let test_overload_storm () = check_report (Check.Storm.overload_storm ~seed:11 ())

let test_storm_all () =
  let reports = Check.Storm.all ~seed:3 () in
  Alcotest.(check int) "three scenarios" 3 (List.length reports);
  List.iter check_report reports

let test_storm_deterministic () =
  (* metrics are a pure function of the seed *)
  let m r = r.Check.Storm.st_metrics in
  let a = Check.Storm.pfcp_storm ~seed:5 () and b = Check.Storm.pfcp_storm ~seed:5 () in
  Alcotest.(check (list (pair string int))) "pfcp metrics reproducible" (m a) (m b);
  let a = Check.Storm.nat_rebalance_storm ~seed:5 ()
  and b = Check.Storm.nat_rebalance_storm ~seed:5 () in
  Alcotest.(check (list (pair string int))) "nat metrics reproducible" (m a) (m b)

let suite =
  [
    Alcotest.test_case "churn: deterministic under seed" `Quick test_churn_deterministic;
    Alcotest.test_case "churn: rate 0 is pure data" `Quick test_churn_rate_zero;
    Alcotest.test_case "churn: rate 1e6 is pure control" `Quick test_churn_rate_full;
    Alcotest.test_case "churn: bookkeeping matches replay" `Quick test_churn_bookkeeping;
    Alcotest.test_case "pfcp session storm contained" `Quick test_pfcp_storm;
    Alcotest.test_case "nat rebalance storm contained" `Quick test_nat_storm;
    Alcotest.test_case "overload storm contained" `Quick test_overload_storm;
    Alcotest.test_case "all scenarios pass" `Quick test_storm_all;
    Alcotest.test_case "storm metrics deterministic" `Quick test_storm_deterministic;
  ]
