(* Crash-tolerant scale-out: core-failure injection, checkpoint/replay
   recovery, exactly-once emits. *)

open Check

let specs_dir = "../specs"

(* ----- the kill schedule ----- *)

let test_decide_kill_shape () =
  let fg = Faultgen.create ~seed:7 () in
  (match Faultgen.decide_kill fg ~cores:1 ~packets:400 with
  | None -> ()
  | Some _ -> Alcotest.fail "a lone core must never be killed");
  (match Faultgen.decide_kill fg ~cores:4 ~packets:0 with
  | None -> ()
  | Some _ -> Alcotest.fail "no packets, no kill");
  match Faultgen.decide_kill fg ~cores:4 ~packets:400 with
  | None -> Alcotest.fail "cores >= 2 must schedule a kill"
  | Some (victim, g) ->
      Alcotest.(check bool) "victim in range" true (victim >= 0 && victim < 4);
      Alcotest.(check bool) "kill in the middle half" true (g >= 100 && g < 300);
      (* deterministic *)
      Alcotest.(check bool)
        "deterministic" true
        (Faultgen.decide_kill fg ~cores:4 ~packets:400 = Some (victim, g))

(* ----- the platform journal ----- *)

let entry pkt =
  { Gunfu.Platform.Recovery.e_pkt = pkt; e_hint = 0; e_aux = 0; e_inj = None }

let test_journal_epochs () =
  let j =
    Gunfu.Platform.Recovery.journal { Gunfu.Platform.Recovery.epoch = 4; log_capacity = 8 }
  in
  Alcotest.(check bool) "boundary before pull 0" true (Gunfu.Platform.Recovery.boundary j);
  Gunfu.Platform.Recovery.checkpoint j "ck0";
  for _ = 1 to 4 do
    Gunfu.Platform.Recovery.record j (entry None)
  done;
  Alcotest.(check bool) "boundary at epoch" true (Gunfu.Platform.Recovery.boundary j);
  Alcotest.(check int) "suffix holds the epoch" 4
    (List.length (Gunfu.Platform.Recovery.suffix j));
  Gunfu.Platform.Recovery.checkpoint j "ck1";
  Alcotest.(check int) "checkpoint trims the log" 0
    (List.length (Gunfu.Platform.Recovery.suffix j));
  Gunfu.Platform.Recovery.record j (entry None);
  Alcotest.(check bool) "mid-epoch is not a boundary" false
    (Gunfu.Platform.Recovery.boundary j);
  Alcotest.(check (option string)) "last checkpoint" (Some "ck1")
    (Gunfu.Platform.Recovery.last_checkpoint j);
  Alcotest.(check int) "trim accounting" 4 (Gunfu.Platform.Recovery.trimmed j);
  Alcotest.(check int) "no overflow" 0 (Gunfu.Platform.Recovery.overflowed j)

let test_journal_validates () =
  Alcotest.check_raises "epoch must be positive"
    (Invalid_argument "Platform.Recovery.journal: epoch must be positive") (fun () ->
      ignore
        (Gunfu.Platform.Recovery.journal
           { Gunfu.Platform.Recovery.epoch = 0; log_capacity = 8 }));
  Alcotest.check_raises "log must cover an epoch"
    (Invalid_argument "Platform.Recovery.journal: log_capacity must cover one epoch")
    (fun () ->
      ignore
        (Gunfu.Platform.Recovery.journal
           { Gunfu.Platform.Recovery.epoch = 8; log_capacity = 4 }))

let test_owner_pinning () =
  Alcotest.(check int) "hint mod cores" 2 (Gunfu.Platform.Recovery.owner ~cores:3 5);
  Alcotest.(check int) "hint-less falls to core 0" 0
    (Gunfu.Platform.Recovery.owner ~cores:3 (-1))

(* ----- recovery equivalence sweeps ----- *)

let kill_recovers rc ~seed ~cores =
  let plan = Faultgen.create ~seed () in
  let oc = Recovery.check_case ~plan ~cores rc in
  (match oc.Recovery.oc_kill with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a scheduled kill");
  List.iter
    (fun (label, viol) ->
      Alcotest.failf "%s: %a" label Invariants.pp_violation viol)
    oc.Recovery.oc_violations;
  (match oc.Recovery.oc_divergence with
  | None -> ()
  | Some d -> Alcotest.failf "recovered run diverged: %s (repro: %s)" d oc.Recovery.oc_repro);
  Alcotest.(check bool) "victim checkpointed" true (oc.Recovery.oc_checkpoints > 0)

let test_gen_kill_sweep () =
  List.iter
    (fun seed ->
      List.iter
        (fun profile ->
          kill_recovers
            (Recovery.gen_rcase ~seed ~profile ~packets:160)
            ~seed ~cores:4)
        [ "uniform"; "zipf" ])
    [ 1; 2; 3; 4 ]

let test_gen_kill_profiles () =
  (* the adversarial arrival orders, and an odd core count *)
  List.iter
    (fun profile ->
      kill_recovers (Recovery.gen_rcase ~seed:11 ~profile ~packets:160) ~seed:11 ~cores:3)
    [ "burst"; "mix" ]

let test_spec_kill_sweep () =
  List.iter
    (fun name ->
      kill_recovers
        (Recovery.spec_rcase ~specs_dir ~name ~seed:5 ~packets:160)
        ~seed:5 ~cores:4)
    Progen.spec_names

(* Exhaustive over victims: force every (victim, kill point) corner,
   including a kill before the victim's first pull. *)
let test_forced_kill_corners () =
  let rc = Recovery.gen_rcase ~seed:9 ~profile:"zipf" ~packets:120 in
  List.iter
    (fun victim ->
      List.iter
        (fun g_kill ->
          let oc = Recovery.check_case ~kill:(victim, g_kill) ~cores:3 rc in
          if not (Recovery.passed oc) then
            Alcotest.failf "victim=%d g=%d: %a" victim g_kill Recovery.pp_outcome oc)
        [ 0; 59; 119 ])
    [ 0; 1; 2 ]

(* ----- the inert plane ----- *)

let strip (p : Recovery.pass) =
  List.map
    (fun (label, (o : Oracle.observation)) ->
      (label, o.Oracle.o_emits, o.Oracle.o_inputs, o.Oracle.o_run))
    p.Recovery.p_obs

let test_journal_inert () =
  List.iter
    (fun seed ->
      let rc = Recovery.gen_rcase ~seed ~profile:"zipf" ~packets:96 in
      (* Trace once (as check_case does) so both passes see the same
         run-local packet ids; each pass still executes its own clones. *)
      let items = lazy (rc.Recovery.r_trace ()) in
      let rc = { rc with Recovery.r_trace = (fun () -> Lazy.force items) } in
      let off = Recovery.observe_platform ~journal:false ~cores:3 rc in
      let on = Recovery.observe_platform ~journal:true ~cores:3 rc in
      Alcotest.(check bool)
        "journaling is byte-inert on observations" true
        (strip off = strip on);
      Alcotest.(check string) "and on the state digest" off.Recovery.p_digest
        on.Recovery.p_digest)
    [ 3; 8 ]

(* ----- invariant teeth ----- *)

let obs_of_emits emits packets : Oracle.observation =
  {
    Oracle.o_label = "fake";
    o_run =
      {
        Gunfu.Metrics.label = "fake";
        packets;
        drops = List.length (List.filter (fun e -> e.Oracle.e_dropped) emits);
        cycles = 0;
        instrs = 0;
        wire_bytes = 0;
        switches = 0;
        mem = Memsim.Memstats.zero;
        freq_ghz = 1.0;
        state_cycles = [||];
        latency = None;
        faulted = 0;
        faults = [];
        degraded = false;
        imbalance = None;
      };
    o_emits = emits;
    o_inputs = [];
    o_state = "";
    o_mshr_pending = 0;
    o_mshr_limit = 1;
  }

let emit ?(pktid = 0) ?(flow = 0) ?(dropped = false) ?(wire = 64) () : Oracle.emit =
  {
    Oracle.e_flow = flow;
    e_aux = 0;
    e_event = (if dropped then "DROP" else "EMIT");
    e_dropped = dropped;
    e_wire = wire;
    e_pkt = "pk";
    e_pktid = pktid;
    e_clock = 0;
  }

let test_check_recovery_teeth () =
  let e0 = emit ~pktid:0 () and e1 = emit ~pktid:1 ~flow:1 () in
  let dup = emit ~pktid:0 () in
  (* clean: 2 offered, 1 replayed *)
  let live = [ ("core0", obs_of_emits [ e0 ] 1); ("core1", obs_of_emits [ dup; e1 ] 2) ] in
  Alcotest.(check int) "clean case has no violations" 0
    (List.length
       (Invariants.check_recovery ~offered:2 ~live ~deduped:[ e0; e1 ]
          ~suppressed:[ (dup, Some e0) ]));
  (* lost packet: deduped comes up short *)
  Alcotest.(check bool) "lost completion detected" true
    (List.exists
       (fun v -> v.Invariants.v_rule = "recovery-conservation")
       (Invariants.check_recovery ~offered:2 ~live ~deduped:[ e0 ]
          ~suppressed:[ (dup, Some e0) ]));
  (* duplicate divergence: replayed content differs from the original *)
  let mutant = emit ~pktid:0 ~wire:999 () in
  Alcotest.(check bool) "diverging replay detected" true
    (List.exists
       (fun v -> v.Invariants.v_rule = "exactly-once")
       (Invariants.check_recovery ~offered:2
          ~live:[ ("core0", obs_of_emits [ e0 ] 1); ("core1", obs_of_emits [ mutant; e1 ] 2) ]
          ~deduped:[ e0; e1 ]
          ~suppressed:[ (mutant, Some e0) ]));
  (* orphan replay: no original on the dead core *)
  Alcotest.(check bool) "orphan replay detected" true
    (List.exists
       (fun v -> v.Invariants.v_rule = "exactly-once")
       (Invariants.check_recovery ~offered:2 ~live ~deduped:[ e0; e1 ]
          ~suppressed:[ (dup, None) ]))

(* ----- Kill_core is inert outside the platform ----- *)

let test_kill_core_inert_in_executors () =
  (* arming Kill_core on a single-core oracle run must change nothing *)
  let case = Progen.case ~seed:17 ~profile:"zipf" ~packets:64 in
  let base =
    Oracle.observe Oracle.reference (case.Oracle.c_build ~packets:64)
  in
  let inst = case.Oracle.c_build ~packets:64 in
  let plane = Gunfu.Fault.create () in
  Gunfu.Fault.inject plane ~packet_id:3 Gunfu.Fault.Kill_core;
  let emits = ref 0 in
  let run =
    Gunfu.Rtc.run ~fault:plane
      ~on_complete:(fun _ -> incr emits)
      inst.Oracle.worker inst.Oracle.program inst.Oracle.source
  in
  Alcotest.(check int) "same completions" (List.length base.Oracle.o_emits) !emits;
  Alcotest.(check int) "same drops" base.Oracle.o_run.Gunfu.Metrics.drops
    run.Gunfu.Metrics.drops;
  Alcotest.(check int) "nothing quarantined" 0 run.Gunfu.Metrics.faulted

let suite =
  [
    Alcotest.test_case "decide_kill: range, determinism, lone-core" `Quick
      test_decide_kill_shape;
    Alcotest.test_case "journal: epochs, trim, suffix" `Quick test_journal_epochs;
    Alcotest.test_case "journal: plan validation" `Quick test_journal_validates;
    Alcotest.test_case "owner: RSS pinning" `Quick test_owner_pinning;
    Alcotest.test_case "gen sweep: killed run matches failure-free reference" `Slow
      test_gen_kill_sweep;
    Alcotest.test_case "burst/mix profiles recover on 3 cores" `Slow
      test_gen_kill_profiles;
    Alcotest.test_case "spec sweep: nat/sfc4/upf_downlink recover" `Slow
      test_spec_kill_sweep;
    Alcotest.test_case "forced kill corners: every victim, edge kill points" `Slow
      test_forced_kill_corners;
    Alcotest.test_case "journaling is byte-inert when no core dies" `Quick
      test_journal_inert;
    Alcotest.test_case "check_recovery: teeth" `Quick test_check_recovery_teeth;
    Alcotest.test_case "Kill_core is a no-op for executors" `Quick
      test_kill_core_inert_in_executors;
  ]
