(* Per-packet latency collection and its executor integration. *)

open Gunfu

let test_collector_empty () =
  let c = Metrics.Collector.create () in
  Alcotest.(check bool) "no samples -> None" true (Metrics.Collector.summarize c = None)

let test_collector_percentiles () =
  let c = Metrics.Collector.create () in
  (* 1..100 shuffled: nearest-rank percentiles are the values themselves
     (rank ceil(p*n/100) of 1..100 is exactly p). *)
  let vals = Array.init 100 (fun i -> i + 1) in
  Memsim.Rng.shuffle (Memsim.Rng.create 3) vals;
  Array.iter (fun v -> Metrics.Collector.record c v) vals;
  match Metrics.Collector.summarize c with
  | None -> Alcotest.fail "expected a summary"
  | Some l ->
      Alcotest.(check int) "count" 100 l.Metrics.l_count;
      Alcotest.(check (float 1e-9)) "mean" 50.5 l.Metrics.l_mean;
      Alcotest.(check int) "p50" 50 l.Metrics.l_p50;
      Alcotest.(check int) "p90" 90 l.Metrics.l_p90;
      Alcotest.(check int) "p99" 99 l.Metrics.l_p99;
      Alcotest.(check int) "max" 100 l.Metrics.l_max

let test_collector_growth () =
  let c = Metrics.Collector.create () in
  for i = 1 to 5000 do
    Metrics.Collector.record c i
  done;
  match Metrics.Collector.summarize c with
  | Some l ->
      Alcotest.(check int) "count grows past initial capacity" 5000 l.Metrics.l_count;
      Alcotest.(check int) "max" 5000 l.Metrics.l_max
  | None -> Alcotest.fail "expected a summary"

let run_nat model =
  let s = Helpers.nat_setup ~n_flows:8192 () in
  match model with
  | `Rtc -> Rtc.run s.Helpers.worker s.Helpers.program (Helpers.nat_source s ~count:3000)
  | `Batch ->
      Batch_rtc.run s.Helpers.worker s.Helpers.program (Helpers.nat_source s ~count:3000)
  | `Il n ->
      Scheduler.run s.Helpers.worker s.Helpers.program ~n_tasks:n
        (Helpers.nat_source s ~count:3000)

let latency_of r =
  match r.Metrics.latency with
  | Some l -> l
  | None -> Alcotest.fail "executor did not collect latency"

let test_executors_collect () =
  List.iter
    (fun model ->
      let r = run_nat model in
      let l = latency_of r in
      Alcotest.(check int) "one sample per packet" r.Metrics.packets l.Metrics.l_count;
      Alcotest.(check bool) "ordered percentiles" true
        (l.Metrics.l_p50 <= l.Metrics.l_p90
        && l.Metrics.l_p90 <= l.Metrics.l_p99
        && l.Metrics.l_p99 <= l.Metrics.l_max);
      Alcotest.(check bool) "positive latency" true (l.Metrics.l_p50 > 0))
    [ `Rtc; `Batch; `Il 16 ]

let test_latency_ordering_between_models () =
  (* RTC has the lowest per-packet latency (no holding); interleaving holds
     packets across switches; batching additionally queues whole batches. *)
  let rtc = latency_of (run_nat `Rtc) in
  let il = latency_of (run_nat (`Il 16)) in
  let batch = latency_of (run_nat `Batch) in
  Alcotest.(check bool) "RTC p50 < interleaved p50" true
    (rtc.Metrics.l_p50 < il.Metrics.l_p50);
  Alcotest.(check bool) "interleaved p50 < batch p50" true
    (il.Metrics.l_p50 < batch.Metrics.l_p50)

let test_latency_bounded_by_run () =
  let r = run_nat (`Il 8) in
  let l = latency_of r in
  Alcotest.(check bool) "max latency below total run cycles" true
    (l.Metrics.l_max <= r.Metrics.cycles)

let test_cycles_to_ns () =
  let r = run_nat `Rtc in
  Alcotest.(check (float 1e-9)) "2.7 cycles = 1 ns at 2.7 GHz" 1.0
    (Metrics.cycles_to_ns r 27 /. 10.0)

let suite =
  [
    Alcotest.test_case "collector empty" `Quick test_collector_empty;
    Alcotest.test_case "collector percentiles" `Quick test_collector_percentiles;
    Alcotest.test_case "collector growth" `Quick test_collector_growth;
    Alcotest.test_case "executors collect" `Quick test_executors_collect;
    Alcotest.test_case "model latency ordering" `Quick test_latency_ordering_between_models;
    Alcotest.test_case "latency bounded by run" `Quick test_latency_bounded_by_run;
    Alcotest.test_case "cycles_to_ns" `Quick test_cycles_to_ns;
  ]
