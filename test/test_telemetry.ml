(* The telemetry plane: inertness (a run with the tracer attached is
   byte-identical to one without), exact reconciliation of cache-level
   attribution against Memstats, well-formed Chrome trace export, and the
   telemetry invariants flagging tampered traces. Plus the satellite
   percentile/Memstats algebra pins. *)

open Gunfu
open Check

let strip e =
  ( e.Oracle.e_flow, e.Oracle.e_aux, e.Oracle.e_event, e.Oracle.e_dropped,
    e.Oracle.e_wire, e.Oracle.e_pkt, e.Oracle.e_clock )

(* ----- inertness: the other half of the plane's contract ----- *)

let test_attached_tracer_identical () =
  List.iter
    (fun exec ->
      let case = Progen.case ~seed:23 ~profile:"mix" ~packets:64 in
      let plain =
        Oracle.observe exec (case.Oracle.c_build ~packets:case.Oracle.c_packets)
      in
      let tr = Trace.create () in
      let traced =
        Oracle.observe ~telemetry:tr
          exec
          (case.Oracle.c_build ~packets:case.Oracle.c_packets)
      in
      Alcotest.(check string)
        (exec.Oracle.x_name ^ ": state digest identical")
        plain.Oracle.o_state traced.Oracle.o_state;
      Alcotest.(check bool)
        (exec.Oracle.x_name ^ ": emit streams identical")
        true
        (List.map strip plain.Oracle.o_emits = List.map strip traced.Oracle.o_emits);
      Alcotest.(check int)
        (exec.Oracle.x_name ^ ": cycle-identical")
        plain.Oracle.o_run.Metrics.cycles traced.Oracle.o_run.Metrics.cycles;
      (* And the tracer actually saw the run. *)
      Alcotest.(check int)
        (exec.Oracle.x_name ^ ": every pull traced")
        traced.Oracle.o_run.Metrics.packets (Trace.pulls tr);
      Alcotest.(check int)
        (exec.Oracle.x_name ^ ": every completion traced")
        traced.Oracle.o_run.Metrics.packets (Trace.completes tr))
    [ Oracle.reference; List.hd Oracle.executors; List.nth Oracle.executors 5 ]

(* Satellite of the compile-and-specialize pass: with the tracer armed the
   specialized path must stay observation- AND span-identical — same pulls,
   completions, attributed cycles and span stream as the interpreted run,
   and the budget/memstats invariants must still reconcile. *)
let test_specialized_traced_identical () =
  List.iter
    (fun exec ->
      let case = Progen.case ~seed:29 ~profile:"mix" ~packets:256 in
      let tr_i = Trace.create () in
      let interp =
        Oracle.observe ~telemetry:tr_i exec (case.Oracle.c_build ~packets:256)
      in
      let tr_s = Trace.create () in
      let spec =
        Oracle.observe ~specialize:true ~telemetry:tr_s exec
          (case.Oracle.c_build ~packets:256)
      in
      let label = spec.Oracle.o_label in
      (match Oracle.diff_observations ~reference:interp spec with
      | None -> ()
      | Some d -> Alcotest.failf "%s diverges when traced: %s" label d);
      Alcotest.(check int) (label ^ ": pulls equal") (Trace.pulls tr_i)
        (Trace.pulls tr_s);
      Alcotest.(check int) (label ^ ": completions equal") (Trace.completes tr_i)
        (Trace.completes tr_s);
      Alcotest.(check int)
        (label ^ ": attributed cycle budget equal")
        (Trace.attributed_cycles tr_i) (Trace.attributed_cycles tr_s);
      Alcotest.(check bool) (label ^ ": span streams identical") true
        (Trace.spans tr_i = Trace.spans tr_s);
      (match Invariants.check_telemetry tr_s spec.Oracle.o_run with
      | [] -> ()
      | viol :: _ ->
          Alcotest.failf "%s traced run violates %s: %s" label viol.Invariants.v_rule
            viol.Invariants.v_detail);
      match Telemetry.Attribution.reconcile tr_s spec.Oracle.o_run.Metrics.mem with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: attribution does not reconcile: %s" label e)
    [ Oracle.reference; List.hd Oracle.executors; List.nth Oracle.executors 5 ]

(* ----- a traced run to dissect ----- *)

let traced_run ?(packets = 10_000) ?(exec = Oracle.reference) () =
  let case = Progen.case ~seed:5 ~profile:"zipf" ~packets in
  let tr = Trace.create () in
  let obs =
    Oracle.observe ~telemetry:tr exec (case.Oracle.c_build ~packets)
  in
  (tr, obs.Oracle.o_run)

let test_reconciles_with_memstats () =
  let tr, run = traced_run () in
  Alcotest.(check int) "10k packets pulled" 10_000 (Trace.pulls tr);
  (match Telemetry.Attribution.reconcile tr run.Metrics.mem with
  | Ok () -> ()
  | Error e -> Alcotest.failf "attribution does not reconcile: %s" e);
  (* The ring overflowed on a run this long; the books must not care. *)
  Alcotest.(check bool) "ring actually dropped spans" true (Trace.dropped tr > 0);
  match Invariants.check_telemetry tr run with
  | [] -> ()
  | viol :: _ ->
      Alcotest.failf "traced run violates %s: %s" viol.Invariants.v_rule
        viol.Invariants.v_detail

let test_scheduler_trace_clean () =
  (* The scheduler path exercises switches, occupancy and MSHR waits. *)
  let exec = List.nth Oracle.executors 5 in
  let tr, run = traced_run ~packets:512 ~exec () in
  Alcotest.(check int) "no spans dropped at 512 packets" 0 (Trace.dropped tr);
  Alcotest.(check bool) "switch spans recorded" true (Trace.switch_cycles tr > 0);
  Alcotest.(check bool) "occupancy sampled" true
    (Array.length (Trace.occupancy tr) > 0);
  (match Invariants.check_telemetry tr run with
  | [] -> ()
  | viol :: _ ->
      Alcotest.failf "%s traced run violates %s: %s" exec.Oracle.x_name
        viol.Invariants.v_rule viol.Invariants.v_detail);
  match Telemetry.Attribution.reconcile tr run.Metrics.mem with
  | Ok () -> ()
  | Error e -> Alcotest.failf "attribution does not reconcile: %s" e

let test_chrome_export_valid () =
  let tr, _ = traced_run ~packets:512 () in
  let s = Telemetry.Chrome.export_string tr in
  match Telemetry.Chrome.validate_string s with
  | Ok n -> Alcotest.(check bool) "events exported" true (n > 0)
  | Error e -> Alcotest.failf "exported Chrome trace invalid: %s" e

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_attribution_report_renders () =
  let tr, run = traced_run ~packets:512 () in
  let report = Telemetry.Attribution.report ~run tr in
  List.iter
    (fun needle ->
      if not (contains report needle) then Alcotest.failf "report lacks %S" needle)
    [ "reconcil"; "attributed"; "pull" ]

(* ----- tamper detection ----- *)

let test_tampered_nesting_flagged () =
  let tr, run = traced_run ~packets:256 () in
  Alcotest.(check int) "no drops" 0 (Trace.dropped tr);
  let spans = Trace.spans tr in
  (* Drag one in-action memory span outside its enclosing action. *)
  let doctored =
    Array.map
      (fun sp ->
        if
          sp.Trace.sp_phase = Trace.State_access
          && sp.Trace.sp_unit >= 0
        then { sp with Trace.sp_ts = sp.Trace.sp_ts + 1_000_000 }
        else sp)
      spans
  in
  Alcotest.(check bool) "clean spans pass" true
    (Invariants.check_telemetry ~spans tr run = []);
  match
    List.filter
      (fun v -> v.Invariants.v_rule = "span-nesting")
      (Invariants.check_telemetry ~spans:doctored tr run)
  with
  | [] -> Alcotest.fail "doctored span escaped the nesting rule"
  | _ -> ()

let test_tampered_budget_flagged () =
  let tr, run = traced_run ~packets:256 () in
  let attributed = Trace.attributed_cycles tr in
  Alcotest.(check bool) "trace attributes cycles" true (attributed > 0);
  let shrunk = { run with Metrics.cycles = attributed - 1 } in
  match
    List.filter
      (fun v -> v.Invariants.v_rule = "span-budget")
      (Invariants.check_telemetry tr shrunk)
  with
  | [] -> Alcotest.fail "over-attribution escaped the budget rule"
  | _ -> ()

let test_tampered_memstats_flagged () =
  let tr, run = traced_run ~packets:256 () in
  let mem = { run.Metrics.mem with Memsim.Memstats.l1_hits = run.Metrics.mem.Memsim.Memstats.l1_hits + 1 } in
  let doctored = { run with Metrics.mem = mem } in
  match
    List.filter
      (fun v -> v.Invariants.v_rule = "span-memstats")
      (Invariants.check_telemetry tr doctored)
  with
  | [] -> Alcotest.fail "counter drift escaped the memstats rule"
  | _ -> ()

(* ----- Collector percentile edge cases (nearest-rank) ----- *)

let summarize_of samples =
  let c = Metrics.Collector.create () in
  List.iter (Metrics.Collector.record c) samples;
  Metrics.Collector.summarize c

let test_collector_empty () =
  Alcotest.(check bool) "0 samples summarize to None" true (summarize_of [] = None)

let test_collector_single () =
  match summarize_of [ 42 ] with
  | None -> Alcotest.fail "1 sample must summarize"
  | Some l ->
      Alcotest.(check int) "count" 1 l.Metrics.l_count;
      Alcotest.(check int) "p50 is the sample" 42 l.Metrics.l_p50;
      Alcotest.(check int) "p90 is the sample" 42 l.Metrics.l_p90;
      Alcotest.(check int) "p99 is the sample" 42 l.Metrics.l_p99;
      Alcotest.(check int) "max is the sample" 42 l.Metrics.l_max;
      Alcotest.(check (float 1e-9)) "mean is the sample" 42.0 l.Metrics.l_mean

let test_collector_nearest_rank_small_n () =
  (* n = 4: nearest rank = ceil(p*n/100), so p50 -> rank 2, p90/p99 -> rank 4. *)
  (match summarize_of [ 40; 10; 30; 20 ] with
  | None -> Alcotest.fail "4 samples must summarize"
  | Some l ->
      Alcotest.(check int) "p50 = 2nd of 4" 20 l.Metrics.l_p50;
      Alcotest.(check int) "p90 = 4th of 4" 40 l.Metrics.l_p90;
      Alcotest.(check int) "p99 = 4th of 4" 40 l.Metrics.l_p99);
  (* n = 2: p50 -> rank 1 (the smaller sample), not an interpolation. *)
  match summarize_of [ 100; 10 ] with
  | None -> Alcotest.fail "2 samples must summarize"
  | Some l ->
      Alcotest.(check int) "p50 = 1st of 2" 10 l.Metrics.l_p50;
      Alcotest.(check int) "p99 = 2nd of 2" 100 l.Metrics.l_p99

(* ----- Memstats algebra round-trips ----- *)

let mem_a =
  {
    Memsim.Memstats.reads = 101; writes = 57; line_accesses = 340; l1_hits = 200;
    l2_hits = 80; llc_hits = 30; dram_fills = 20; mshr_waits = 10;
    wait_cycles = 777; prefetch_issued = 44; prefetch_redundant = 5;
    prefetch_dropped = 2; mshr_stalls = 1;
  }

let mem_b =
  {
    Memsim.Memstats.reads = 11; writes = 3; line_accesses = 29; l1_hits = 17;
    l2_hits = 6; llc_hits = 3; dram_fills = 2; mshr_waits = 1; wait_cycles = 66;
    prefetch_issued = 4; prefetch_redundant = 1; prefetch_dropped = 0;
    mshr_stalls = 0;
  }

let test_memstats_roundtrip () =
  Alcotest.(check bool) "diff (add a b) b = a" true
    (Memsim.Memstats.diff (Memsim.Memstats.add mem_a mem_b) mem_b = mem_a);
  Alcotest.(check bool) "add (diff a b) b = a" true
    (Memsim.Memstats.add (Memsim.Memstats.diff mem_a mem_b) mem_b = mem_a);
  Alcotest.(check bool) "zero is the add identity" true
    (Memsim.Memstats.add mem_a Memsim.Memstats.zero = mem_a);
  Alcotest.(check bool) "diff with self is zero" true
    (Memsim.Memstats.diff mem_a mem_a = Memsim.Memstats.zero)

(* ----- Hist sanity ----- *)

let test_hist_percentiles () =
  let h = Trace.Hist.create () in
  Alcotest.(check int) "empty percentile" 0 (Trace.Hist.percentile h 99);
  for v = 1 to 15 do
    Trace.Hist.record h v
  done;
  (* Below 16 the histogram is exact. *)
  Alcotest.(check int) "exact p50 on 1..15" 8 (Trace.Hist.percentile h 50);
  Alcotest.(check int) "exact p99 on 1..15" 15 (Trace.Hist.percentile h 99);
  Trace.Hist.record h 1_000_000;
  Alcotest.(check int) "max tracks the outlier" 1_000_000 (Trace.Hist.max_value h);
  let p99 = Trace.Hist.percentile h 99 in
  Alcotest.(check bool) "p99 within 1/16 below the outlier" true
    (p99 <= 1_000_000 && float_of_int p99 >= 1_000_000.0 *. (1.0 -. 1.0 /. 16.0) *. 0.5)

let suite =
  [
    Alcotest.test_case "attached tracer changes nothing" `Quick
      test_attached_tracer_identical;
    Alcotest.test_case "specialized traced run identical" `Quick
      test_specialized_traced_identical;
    Alcotest.test_case "10k-packet trace reconciles with memstats" `Slow
      test_reconciles_with_memstats;
    Alcotest.test_case "scheduler trace clean" `Quick test_scheduler_trace_clean;
    Alcotest.test_case "chrome export well-formed" `Quick test_chrome_export_valid;
    Alcotest.test_case "attribution report renders" `Quick
      test_attribution_report_renders;
    Alcotest.test_case "tampered nesting flagged" `Quick test_tampered_nesting_flagged;
    Alcotest.test_case "tampered budget flagged" `Quick test_tampered_budget_flagged;
    Alcotest.test_case "tampered memstats flagged" `Quick
      test_tampered_memstats_flagged;
    Alcotest.test_case "collector: empty" `Quick test_collector_empty;
    Alcotest.test_case "collector: single sample" `Quick test_collector_single;
    Alcotest.test_case "collector: nearest rank on small n" `Quick
      test_collector_nearest_rank_small_n;
    Alcotest.test_case "memstats diff/add round-trips" `Quick test_memstats_roundtrip;
    Alcotest.test_case "hist percentiles" `Quick test_hist_percentiles;
  ]
