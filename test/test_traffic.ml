(* Traffic generation: Zipf, flow universes, CAIDA-like traces, MGW. *)

open Traffic

(* ----- Zipf ----- *)

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create ~n:100 ~s:1.1 in
  let total = ref 0.0 in
  for i = 0 to 99 do
    total := !total +. Zipf.pmf z i
  done;
  Alcotest.(check (float 1e-9)) "pmf sums to 1" 1.0 !total

let test_zipf_monotone () =
  let z = Zipf.create ~n:50 ~s:1.2 in
  for i = 1 to 49 do
    Alcotest.(check bool) "pmf decreasing in rank" true (Zipf.pmf z i <= Zipf.pmf z (i - 1))
  done

let test_zipf_s0_uniform () =
  let z = Zipf.create ~n:10 ~s:0.0 in
  for i = 0 to 9 do
    Alcotest.(check (float 1e-9)) "uniform mass" 0.1 (Zipf.pmf z i)
  done

let test_zipf_sample_range () =
  let z = Zipf.create ~n:37 ~s:1.0 in
  let r = Memsim.Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Zipf.sample z r in
    Alcotest.(check bool) "sample in range" true (v >= 0 && v < 37)
  done

let test_zipf_skew () =
  let z = Zipf.create ~n:1000 ~s:1.1 in
  let r = Memsim.Rng.create 2 in
  let hits_rank0 = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    if Zipf.sample z r = 0 then incr hits_rank0
  done;
  let expected = Zipf.pmf z 0 *. float_of_int n in
  Alcotest.(check bool) "rank 0 frequency matches pmf (within 20%)" true
    (abs_float (float_of_int !hits_rank0 -. expected) < 0.2 *. expected)

let test_zipf_invalid () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~n:0 ~s:1.0))

(* ----- Flowgen ----- *)

let test_flowgen_distinct_flows () =
  let g = Flowgen.create ~n_flows:5000 () in
  let keys =
    Array.to_list (Array.map Netcore.Flow.key64 (Flowgen.flows g)) |> List.sort_uniq compare
  in
  Alcotest.(check int) "5-tuples distinct (by key)" 5000 (List.length keys)

let test_flowgen_deterministic () =
  let a = Flowgen.create ~seed:9 ~n_flows:100 () in
  let b = Flowgen.create ~seed:9 ~n_flows:100 () in
  let ia, pa = Flowgen.next_with_idx a in
  let ib, pb = Flowgen.next_with_idx b in
  Alcotest.(check int) "same flow index" ia ib;
  Alcotest.(check bool) "same flow" true
    (Netcore.Flow.equal pa.Netcore.Packet.flow pb.Netcore.Packet.flow)

let test_flowgen_packet_matches_universe () =
  let g = Flowgen.create ~n_flows:64 () in
  for _ = 1 to 100 do
    let i, p = Flowgen.next_with_idx g in
    Alcotest.(check bool) "packet flow = flows.(i)" true
      (Netcore.Flow.equal (Flowgen.flow g i) p.Netcore.Packet.flow)
  done

let test_flowgen_imix_mean () =
  (* (7*64 + 4*576 + 1*1500) / 12 *)
  Alcotest.(check (float 0.01)) "imix mean" (4252.0 /. 12.0) (Flowgen.mean_size Flowgen.imix)

let test_flowgen_fixed_size () =
  let g = Flowgen.create ~n_flows:10 ~size_model:(Flowgen.Fixed 512) () in
  for _ = 1 to 20 do
    Alcotest.(check int) "fixed size" 512 (Flowgen.next g).Netcore.Packet.wire_len
  done

let test_flowgen_mix_sizes_present () =
  let g = Flowgen.create ~n_flows:10 ~size_model:Flowgen.imix () in
  let seen = Hashtbl.create 4 in
  for _ = 1 to 2000 do
    Hashtbl.replace seen (Flowgen.next g).Netcore.Packet.wire_len ()
  done;
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "size %d sampled" s) true (Hashtbl.mem seen s))
    [ 64; 576; 1500 ]

let test_flowgen_zipf_skews_flows () =
  let g = Flowgen.create ~n_flows:1000 ~popularity:(Flowgen.Zipf 1.2) () in
  let counts = Hashtbl.create 64 in
  for _ = 1 to 10000 do
    let i, _ = Flowgen.next_with_idx g in
    Hashtbl.replace counts i (1 + Option.value ~default:0 (Hashtbl.find_opt counts i))
  done;
  let max_count = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  Alcotest.(check bool) "most popular flow well above uniform share" true (max_count > 100)

let test_flowgen_batch () =
  let g = Flowgen.create ~n_flows:10 () in
  Alcotest.(check int) "batch size" 32 (Array.length (Flowgen.batch g 32))

let test_caida_properties () =
  let g = Caida.create ~n_flows:500 () in
  Alcotest.(check int) "universe size" 500 (Flowgen.n_flows g);
  Alcotest.(check bool) "heavy mean size" true (Caida.mean_wire_bytes > 500.0)

(* ----- MGW ----- *)

let test_pdr_ranges_partition () =
  let n_pdrs = 16 in
  let covered = Array.make 65536 false in
  for pdr = 0 to n_pdrs - 1 do
    let lo, hi = Mgw.pdr_port_range ~n_pdrs ~pdr in
    for p = lo to hi do
      Alcotest.(check bool) "no overlap" false covered.(p);
      covered.(p) <- true
    done
  done;
  (* Full span 1024..1024+49152-1 covered. *)
  let lo0, _ = Mgw.pdr_port_range ~n_pdrs ~pdr:0 in
  let _, hi_last = Mgw.pdr_port_range ~n_pdrs ~pdr:(n_pdrs - 1) in
  Alcotest.(check int) "starts at 1024" 1024 lo0;
  for p = lo0 to hi_last do
    Alcotest.(check bool) "contiguous coverage" true covered.(p)
  done

let test_mgw_downlink_targets_session () =
  let m = Mgw.create ~n_sessions:100 ~n_pdrs:4 () in
  for _ = 1 to 200 do
    let si, pdr, pkt = Mgw.next_downlink m in
    let s = Mgw.session m si in
    Alcotest.(check bool) "dst ip is the UE ip" true
      (Int32.equal pkt.Netcore.Packet.flow.Netcore.Flow.dst_ip s.Mgw.ue_ip);
    let lo, hi = Mgw.pdr_port_range ~n_pdrs:4 ~pdr in
    let sp = pkt.Netcore.Packet.flow.Netcore.Flow.src_port in
    Alcotest.(check bool) "src port inside the PDR's range" true (sp >= lo && sp <= hi)
  done

let test_mgw_unique_ue_ips () =
  let m = Mgw.create ~n_sessions:1000 ~n_pdrs:2 () in
  let ips =
    Array.to_list (Array.map (fun s -> s.Mgw.ue_ip) (Mgw.sessions m))
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "UE IPs distinct" 1000 (List.length ips)

let test_amf_sequence_order () =
  let g = Mgw.amf_create ~n_ues:1 () in
  let msgs = List.init 50 (fun _ -> snd (Mgw.amf_next g)) in
  let registration =
    [
      Mgw.Registration_request; Mgw.Authentication_response; Mgw.Security_mode_complete;
      Mgw.Registration_complete; Mgw.Pdu_session_request;
    ]
  in
  (* A fresh UE always walks the full registration sequence first... *)
  Alcotest.(check bool) "registers first" true
    (List.filteri (fun i _ -> i < 5) msgs = registration);
  (* ...and every later message is a valid lifecycle message. *)
  let lifecycle =
    [ Mgw.Pdu_session_request; Mgw.Service_request; Mgw.Periodic_update;
      Mgw.Context_release; Mgw.Deregistration_request; Mgw.Registration_request;
      Mgw.Authentication_response; Mgw.Security_mode_complete; Mgw.Registration_complete ]
  in
  List.iteri
    (fun i m ->
      if i >= 5 then
        Alcotest.(check bool) "valid lifecycle message" true (List.mem m lifecycle))
    msgs

let test_amf_generator_is_protocol_valid () =
  (* The generator's per-UE phase tracking must agree with the AMF's
     lifecycle FSM: feed a long mixed stream into a tiny phase mirror. *)
  let g = Mgw.amf_create ~n_ues:8 () in
  let phase = Array.make 8 0 in
  for _ = 1 to 2000 do
    let ue, msg = Mgw.amf_next g in
    let next =
      match (msg, phase.(ue)) with
      | Mgw.Registration_request, 0 -> 1
      | Mgw.Authentication_response, 1 -> 2
      | Mgw.Security_mode_complete, 2 -> 3
      | Mgw.Registration_complete, 3 -> 4
      | Mgw.Pdu_session_request, 4 -> Mgw.phase_connected
      | Mgw.Pdu_session_request, p when p = Mgw.phase_connected -> p
      | Mgw.Periodic_update, p when p = Mgw.phase_connected -> p
      | Mgw.Context_release, p when p = Mgw.phase_connected -> Mgw.phase_idle
      | Mgw.Service_request, p when p = Mgw.phase_idle -> Mgw.phase_connected
      | Mgw.Deregistration_request, p
        when p = Mgw.phase_connected || p = Mgw.phase_idle ->
          0
      | m, p ->
          Alcotest.failf "invalid %s in phase %d" (Mgw.amf_msg_name m) p
    in
    phase.(ue) <- next
  done

let test_amf_ue_range () =
  let g = Mgw.amf_create ~n_ues:50 () in
  for _ = 1 to 500 do
    let ue, _ = Mgw.amf_next g in
    Alcotest.(check bool) "ue id in range" true (ue >= 0 && ue < 50)
  done

let test_amf_msg_names_distinct () =
  let names = List.map Mgw.amf_msg_name Mgw.all_amf_msgs in
  Alcotest.(check int) "distinct names" (List.length names)
    (List.length (List.sort_uniq compare names))

let qcheck_pdr_range_lookup =
  QCheck.Test.make ~name:"every port in a PDR range maps back to that PDR" ~count:200
    QCheck.(pair (int_range 1 64) (int_range 0 63))
    (fun (n_pdrs, pdr) ->
      QCheck.assume (pdr < n_pdrs);
      let lo, hi = Mgw.pdr_port_range ~n_pdrs ~pdr in
      (* Check that the range edges belong to exactly this PDR. *)
      let owner port =
        let rec go j =
          if j >= n_pdrs then -1
          else
            let l, h = Mgw.pdr_port_range ~n_pdrs ~pdr:j in
            if port >= l && port <= h then j else go (j + 1)
        in
        go 0
      in
      owner lo = pdr && owner hi = pdr)

(* ----- alpha sweep (SCR skew bench wiring) ----- *)

let test_alpha_sweep_shared_universe () =
  let sweep = Traffic.Flowgen.alpha_sweep ~seed:5 ~n_flows:2048 [ 0.0; 0.9; 1.5 ] in
  Alcotest.(check int) "one generator per alpha" 3 (List.length sweep);
  let flows0 = Traffic.Flowgen.flows (snd (List.nth sweep 0)) in
  List.iter
    (fun (_, gen) ->
      Alcotest.(check bool) "all points share ONE flow universe" true
        (Traffic.Flowgen.flows gen == flows0))
    sweep;
  (* Rebuilding the sweep is deterministic. *)
  let again = Traffic.Flowgen.alpha_sweep ~seed:5 ~n_flows:2048 [ 0.0; 0.9; 1.5 ] in
  let draw gen = List.init 64 (fun _ -> fst (Traffic.Flowgen.next_with_idx gen)) in
  List.iter2
    (fun (a1, g1) (a2, g2) ->
      Alcotest.(check (float 0.)) "same alpha" a1 a2;
      Alcotest.(check (list int)) "same stream" (draw g1) (draw g2))
    sweep again;
  (* Higher alpha concentrates more of the stream on fewer flows. *)
  let top_share gen =
    let counts = Hashtbl.create 256 in
    for _ = 1 to 4096 do
      let idx, _ = Traffic.Flowgen.next_with_idx gen in
      Hashtbl.replace counts idx (1 + Option.value ~default:0 (Hashtbl.find_opt counts idx))
    done;
    let top = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
    float_of_int top /. 4096.
  in
  let fresh alpha = snd (List.nth (Traffic.Flowgen.alpha_sweep ~seed:5 ~n_flows:2048 [ alpha ]) 0) in
  Alcotest.(check bool) "alpha 1.5 concentrates vs uniform" true
    (top_share (fresh 1.5) > 4. *. top_share (fresh 0.0));
  Alcotest.check_raises "negative alpha rejected"
    (Invalid_argument "Flowgen.alpha_sweep: alpha must be non-negative") (fun () ->
      ignore (Traffic.Flowgen.alpha_sweep ~n_flows:16 [ -0.1 ]))

let test_mgw_elephant_knob () =
  let mgw = Traffic.Mgw.create ~seed:9 ~elephant:0.6 ~n_sessions:1024 ~n_pdrs:4 () in
  let hits = ref 0 in
  let n = 4000 in
  for _ = 1 to n do
    let si, _, _ = Traffic.Mgw.next_downlink mgw in
    if si = 0 then incr hits
  done;
  let share = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "session 0 carries the elephant mass (%.2f)" share)
    true
    (share > 0.55 && share < 0.75);
  (* elephant = 0 spends no rng draw: streams are byte-identical to a
     generator built without the knob. *)
  let plain = Traffic.Mgw.create ~seed:9 ~n_sessions:64 ~n_pdrs:4 () in
  let zero = Traffic.Mgw.create ~seed:9 ~elephant:0.0 ~n_sessions:64 ~n_pdrs:4 () in
  for i = 1 to 256 do
    let a, pa, _ = Traffic.Mgw.next_downlink plain in
    let b, pb, _ = Traffic.Mgw.next_downlink zero in
    Alcotest.(check (pair int int))
      (Printf.sprintf "draw %d identical" i)
      (a, pa) (b, pb)
  done;
  Alcotest.check_raises "elephant >= 1 rejected"
    (Invalid_argument "Mgw.create: elephant must be in [0, 1)") (fun () ->
      ignore (Traffic.Mgw.create ~elephant:1.0 ~n_sessions:4 ~n_pdrs:2 ()))

let suite =
  [
    Alcotest.test_case "zipf pmf sums to 1" `Quick test_zipf_pmf_sums_to_one;
    Alcotest.test_case "zipf monotone" `Quick test_zipf_monotone;
    Alcotest.test_case "zipf s=0 uniform" `Quick test_zipf_s0_uniform;
    Alcotest.test_case "zipf sample range" `Quick test_zipf_sample_range;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf invalid" `Quick test_zipf_invalid;
    Alcotest.test_case "flowgen distinct flows" `Quick test_flowgen_distinct_flows;
    Alcotest.test_case "flowgen deterministic" `Quick test_flowgen_deterministic;
    Alcotest.test_case "flowgen packet matches universe" `Quick
      test_flowgen_packet_matches_universe;
    Alcotest.test_case "imix mean size" `Quick test_flowgen_imix_mean;
    Alcotest.test_case "fixed size" `Quick test_flowgen_fixed_size;
    Alcotest.test_case "mix sizes present" `Quick test_flowgen_mix_sizes_present;
    Alcotest.test_case "zipf skews flows" `Quick test_flowgen_zipf_skews_flows;
    Alcotest.test_case "batch" `Quick test_flowgen_batch;
    Alcotest.test_case "caida properties" `Quick test_caida_properties;
    Alcotest.test_case "pdr ranges partition" `Quick test_pdr_ranges_partition;
    Alcotest.test_case "mgw downlink targets session" `Quick test_mgw_downlink_targets_session;
    Alcotest.test_case "mgw unique ue ips" `Quick test_mgw_unique_ue_ips;
    Alcotest.test_case "amf sequence order" `Quick test_amf_sequence_order;
    Alcotest.test_case "amf generator protocol-valid" `Quick test_amf_generator_is_protocol_valid;
    Alcotest.test_case "amf ue range" `Quick test_amf_ue_range;
    Alcotest.test_case "amf msg names distinct" `Quick test_amf_msg_names_distinct;
    Helpers.qcheck qcheck_pdr_range_lookup;
    Alcotest.test_case "alpha sweep shares one universe" `Quick
      test_alpha_sweep_shared_universe;
    Alcotest.test_case "mgw elephant knob" `Quick test_mgw_elephant_knob;
  ]
