(* Dynamic NAT learning, the pipeline execution model, pcap export, and
   NF-C printing roundtrips. *)

open Gunfu

(* ----- dynamic NAT ----- *)

let dyn_nat ?(n_flows = 256) () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let pool = Netcore.Packet.Pool.create layout ~count:64 in
  let nat = Nfs.Nat.create layout ~name:"nat" ~n_flows () in
  (* Deliberately NOT populated: every flow must be learned. *)
  (worker, pool, nat, Nfs.Nat.dynamic_program nat)

let mk_flow i =
  Netcore.Flow.make
    ~src_ip:(Int32.of_int (0x0A100000 + i))
    ~dst_ip:(Netcore.Ipv4.addr_of_string "192.0.2.1") ~src_port:(2000 + i) ~dst_port:443
    ~proto:Netcore.Ipv4.proto_udp

let send worker program pool flow hint =
  let pkt = Netcore.Packet.make ~flow ~wire_len:96 () in
  Netcore.Packet.Pool.assign pool pkt;
  let r = Helpers.run_one worker program ~flow_hint:hint pkt in
  (r, pkt)

let test_learn_then_translate () =
  let worker, pool, nat, program = dyn_nat () in
  let flow = mk_flow 1 in
  let r1, pkt1 = send worker program pool flow 1 in
  Alcotest.(check int) "first packet forwarded, not dropped" 0 r1.Metrics.drops;
  Alcotest.(check int) "one mapping learned" 1 nat.Nfs.Nat.learned;
  let translated1 = Netcore.Packet.flow_of_headers pkt1 in
  (* The second packet of the same flow must hit the learned mapping. *)
  let r2, pkt2 = send worker program pool flow 1 in
  Alcotest.(check int) "second packet forwarded" 0 r2.Metrics.drops;
  Alcotest.(check int) "no second allocation" 1 nat.Nfs.Nat.learned;
  let translated2 = Netcore.Packet.flow_of_headers pkt2 in
  Alcotest.(check bool) "stable translation" true
    (Netcore.Flow.equal translated1 translated2);
  Alcotest.(check bool) "source actually translated" false
    (Int32.equal translated1.Netcore.Flow.src_ip flow.Netcore.Flow.src_ip)

let test_learn_distinct_flows_distinct_mappings () =
  let worker, pool, nat, program = dyn_nat () in
  let t1 = snd (send worker program pool (mk_flow 1) 1) in
  let t2 = snd (send worker program pool (mk_flow 2) 2) in
  Alcotest.(check int) "two mappings" 2 nat.Nfs.Nat.learned;
  let f1 = Netcore.Packet.flow_of_headers t1 and f2 = Netcore.Packet.flow_of_headers t2 in
  Alcotest.(check bool) "distinct translated ports" true
    (f1.Netcore.Flow.src_port <> f2.Netcore.Flow.src_port)

let test_learn_pool_exhaustion () =
  let worker, pool, nat, program = dyn_nat ~n_flows:4 () in
  for i = 0 to 3 do
    let r, _ = send worker program pool (mk_flow i) i in
    Alcotest.(check int) "within pool: forwarded" 0 r.Metrics.drops
  done;
  let r, _ = send worker program pool (mk_flow 99) 99 in
  Alcotest.(check int) "pool exhausted: dropped" 1 r.Metrics.drops;
  Alcotest.(check int) "no over-allocation" 4 nat.Nfs.Nat.learned

let test_learn_under_interleaving () =
  (* Many packets of few flows, interleaved: per-flow ordering must prevent
     double allocation. *)
  let worker, pool, nat, program = dyn_nat ~n_flows:64 () in
  let rng = Memsim.Rng.create 5 in
  let source =
    Workload.limited 400 (fun () ->
        let i = Memsim.Rng.int rng 16 in
        let pkt = Netcore.Packet.make ~flow:(mk_flow i) ~wire_len:96 () in
        Netcore.Packet.Pool.assign pool pkt;
        { Workload.packet = Some pkt; aux = 0; flow_hint = i })
  in
  let r = Scheduler.run worker program ~n_tasks:16 source in
  Alcotest.(check int) "all packets processed" 400 r.Metrics.packets;
  Alcotest.(check int) "no drops" 0 r.Metrics.drops;
  Alcotest.(check int) "exactly one mapping per flow" 16 nat.Nfs.Nat.learned

let test_expiry_recycles_slots () =
  let worker, pool, nat, program = dyn_nat ~n_flows:8 () in
  (* Learn 4 flows. *)
  for i = 0 to 3 do
    ignore (send worker program pool (mk_flow i) i)
  done;
  Alcotest.(check int) "four learned" 4 nat.Nfs.Nat.learned;
  let now = (Worker.ctx worker).Exec_ctx.clock in
  (* Everything idle for "an eternity": all four expire. *)
  let expired = Nfs.Nat.expire nat ~now:(now + 1_000_000) ~idle_cycles:500_000 in
  Alcotest.(check int) "all expired" 4 expired;
  (* Expired flows miss and re-learn, reusing the freed slots. *)
  let r, _ = send worker program pool (mk_flow 0) 0 in
  Alcotest.(check int) "re-learned, not dropped" 0 r.Metrics.drops;
  Alcotest.(check int) "slot recycled (no bump alloc)" 4 nat.Nfs.Nat.next_free;
  Alcotest.(check int) "learn counter advanced" 5 nat.Nfs.Nat.learned

let test_expiry_spares_active_flows () =
  let worker, pool, nat, program = dyn_nat ~n_flows:8 () in
  ignore (send worker program pool (mk_flow 1) 1);
  let t1 = (Worker.ctx worker).Exec_ctx.clock in
  (* Flow 2 arrives much later; flow 1 stays quiet. *)
  (Worker.ctx worker).Exec_ctx.clock <- t1 + 10_000_000;
  ignore (send worker program pool (mk_flow 2) 2);
  let now = (Worker.ctx worker).Exec_ctx.clock in
  let expired = Nfs.Nat.expire nat ~now ~idle_cycles:1_000_000 in
  Alcotest.(check int) "only the idle flow expired" 1 expired;
  (* The active flow still translates without relearning. *)
  let before = nat.Nfs.Nat.learned in
  let r, _ = send worker program pool (mk_flow 2) 2 in
  Alcotest.(check int) "active flow unaffected" 0 r.Metrics.drops;
  Alcotest.(check int) "no relearn" before nat.Nfs.Nat.learned

(* ----- pipeline execution model ----- *)

let pipeline_stages () =
  let n_flows = 4096 in
  let gen =
    Traffic.Flowgen.create ~seed:8 ~n_flows ~size_model:(Traffic.Flowgen.Fixed 128) ()
  in
  let mk_stage unit_of =
    let worker = Worker.create ~id:0 () in
    let layout = Worker.layout worker in
    let nf_unit = unit_of layout in
    (worker, Nfs.Nf_unit.compile ~name:"stage" [ nf_unit ])
  in
  let s1 =
    mk_stage (fun layout ->
        let lb = Nfs.Lb.create layout ~name:"lb" ~n_flows () in
        Nfs.Lb.populate lb (Traffic.Flowgen.flows gen);
        Nfs.Lb.unit lb)
  in
  let s2 =
    mk_stage (fun layout ->
        let nat = Nfs.Nat.create layout ~name:"nat" ~n_flows () in
        Nfs.Nat.populate nat (Traffic.Flowgen.flows gen);
        Nfs.Nat.unit nat)
  in
  let s3 =
    mk_stage (fun layout ->
        let nm = Nfs.Monitor.create layout ~name:"nm" ~n_flows () in
        Nfs.Monitor.populate nm (Traffic.Flowgen.flows gen);
        Nfs.Monitor.unit nm)
  in
  (gen, [ s1; s2; s3 ])

let test_pipeline_processes_all () =
  let gen, stages = pipeline_stages () in
  let layout = Worker.layout (fst (List.hd stages)) in
  let pool = Netcore.Packet.Pool.create layout ~count:256 in
  let r = Pipeline.run stages (Workload.of_flowgen gen ~pool ~count:1000) in
  Alcotest.(check int) "all packets" 1000 r.Metrics.packets;
  Alcotest.(check int) "no drops" 0 r.Metrics.drops;
  Alcotest.(check bool) "bytes counted once" true (r.Metrics.wire_bytes = 1000 * 128)

let test_pipeline_bottleneck_semantics () =
  let gen, stages = pipeline_stages () in
  let layout = Worker.layout (fst (List.hd stages)) in
  let pool = Netcore.Packet.Pool.create layout ~count:256 in
  let r = Pipeline.run stages (Workload.of_flowgen gen ~pool ~count:1000) in
  (* Merged cycles = bottleneck stage, so throughput is per-bottleneck. *)
  Alcotest.(check bool) "positive throughput" true (Metrics.mpps r > 0.0);
  Alcotest.(check bool) "pipeline slower than sum of work" true (r.Metrics.cycles > 0)

let test_pipeline_empty_stages_rejected () =
  match Pipeline.run [] (fun () -> None) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty pipeline must be rejected"

(* The paper's comparison: consolidating the chain on one core with
   interleaving beats spreading stages across cores with RTC+queues, for
   the same total core count. *)
let test_pipeline_vs_consolidated () =
  let n_flows = 65536 in
  let packets = 10_000 in
  let gen () =
    Traffic.Flowgen.create ~seed:8 ~n_flows ~size_model:(Traffic.Flowgen.Fixed 128) ()
  in
  (* Pipeline: 3 stages = 3 cores; per-core rate = bottleneck rate. *)
  let g1 = gen () in
  let stages =
    let mk unit_of =
      let worker = Worker.create ~id:0 () in
      let layout = Worker.layout worker in
      (worker, Nfs.Nf_unit.compile ~name:"stage" [ unit_of layout ])
    in
    [
      mk (fun l ->
          let lb = Nfs.Lb.create l ~name:"lb" ~n_flows () in
          Nfs.Lb.populate lb (Traffic.Flowgen.flows g1);
          Nfs.Lb.unit lb);
      mk (fun l ->
          let nat = Nfs.Nat.create l ~name:"nat" ~n_flows () in
          Nfs.Nat.populate nat (Traffic.Flowgen.flows g1);
          Nfs.Nat.unit nat);
      mk (fun l ->
          let nm = Nfs.Monitor.create l ~name:"nm" ~n_flows () in
          Nfs.Monitor.populate nm (Traffic.Flowgen.flows g1);
          Nfs.Monitor.unit nm);
    ]
  in
  let pool1 = Netcore.Packet.Pool.create (Worker.layout (fst (List.hd stages))) ~count:256 in
  let pipe = Pipeline.run stages (Workload.of_flowgen g1 ~pool:pool1 ~count:packets) in
  (* Consolidated: the same 3-NF chain interleaved on 1 core, x3 cores. *)
  let g2 = gen () in
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let sfc = Nfs.Sfc.create layout ~length:3 ~packed:false ~n_flows () in
  Nfs.Sfc.populate sfc (Traffic.Flowgen.flows g2);
  let program = Nfs.Sfc.program sfc in
  let pool2 = Netcore.Packet.Pool.create layout ~count:256 in
  let consolidated =
    Scheduler.run worker program ~n_tasks:16
      (Workload.of_flowgen g2 ~pool:pool2 ~count:packets)
  in
  Alcotest.(check bool) "3 consolidated cores beat a 3-stage pipeline" true
    (3.0 *. Metrics.mpps consolidated > Metrics.mpps pipe)

(* ----- pcap ----- *)

let test_pcap_roundtrip () =
  let gen = Traffic.Flowgen.create ~seed:9 ~n_flows:16 ~size_model:(Traffic.Flowgen.Fixed 300) () in
  let pkts = Array.to_list (Traffic.Flowgen.batch gen 10) in
  let w = Netcore.Pcap.create_writer () in
  List.iteri (fun i p -> Netcore.Pcap.add_packet w ~ts_us:(i * 100) p) pkts;
  let records = Netcore.Pcap.parse (Netcore.Pcap.contents w) in
  Alcotest.(check int) "record count" 10 (List.length records);
  List.iteri
    (fun i (r : Netcore.Pcap.record) ->
      let p = List.nth pkts i in
      Alcotest.(check int) "timestamp" (i * 100) r.Netcore.Pcap.ts_us;
      Alcotest.(check int) "original length preserved" p.Netcore.Packet.wire_len
        r.Netcore.Pcap.orig_len;
      (* The captured bytes decode back to the same flow. *)
      let eth = Netcore.Ethernet.decode r.Netcore.Pcap.data ~off:0 in
      Alcotest.(check int) "ethertype" Netcore.Ethernet.ethertype_ipv4
        eth.Netcore.Ethernet.ethertype;
      let ip = Netcore.Ipv4.decode r.Netcore.Pcap.data ~off:Netcore.Ethernet.header_bytes in
      Alcotest.(check bool) "src ip survives capture" true
        (Int32.equal ip.Netcore.Ipv4.src p.Netcore.Packet.flow.Netcore.Flow.src_ip))
    records

let test_pcap_file_io () =
  let gen = Traffic.Flowgen.create ~seed:9 ~n_flows:4 () in
  let w = Netcore.Pcap.create_writer () in
  Netcore.Pcap.add_packet w ~ts_us:42 (Traffic.Flowgen.next gen);
  let path = Filename.temp_file "gunfu" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Netcore.Pcap.write_file w path;
      let records = Netcore.Pcap.read_file path in
      Alcotest.(check int) "one record" 1 (List.length records))

let test_pcap_bad_input () =
  List.iter
    (fun s ->
      match Netcore.Pcap.parse s with
      | exception Netcore.Pcap.Bad_capture _ -> ()
      | _ -> Alcotest.fail "malformed capture accepted")
    [ ""; "short"; String.make 24 '\000' ]

(* ----- NF-C printing roundtrip ----- *)

let test_nfc_print_parse_roundtrip () =
  let src =
    "NFAction(f) { TempState.x = (Packet.a + 2) * PerFlowState.b; if (TempState.x > 10) { Emit(big); } else { Drop(); } }"
  in
  let p1 = Nfc.parse src in
  let p2 = Nfc.parse (Nfc.to_string p1) in
  Alcotest.(check bool) "AST stable under print/parse" true (p1 = p2)

let qcheck_nfc_roundtrip =
  (* Random small programs: print then reparse must be the identity. *)
  let gen_expr =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun v -> Nfc.Int v) (int_range 0 1000);
                map (fun f -> Nfc.Ref (Nfc.Packet, "f" ^ string_of_int f)) (int_range 0 5);
              ]
          else
            map3
              (fun op a b -> Nfc.Bin (op, a, b))
              (oneofl Nfc.[ Add; Sub; Mul; And; Eq; Lt ])
              (self (n / 2)) (self (n / 2))))
  in
  let gen_stmt =
    QCheck.Gen.(
      oneof
        [
          map2 (fun f e -> Nfc.Assign (Nfc.Temp, "t" ^ string_of_int f, e)) (int_range 0 5) gen_expr;
          map (fun e -> Nfc.If (e, [ Nfc.Emit "yes" ], [ Nfc.Drop ])) gen_expr;
          return (Nfc.Emit "done");
        ])
  in
  let gen_prog =
    QCheck.Gen.(
      map
        (fun stmts -> { Nfc.action_name = "fuzz"; body = stmts; temporaries = [] })
        (list_size (int_range 1 6) gen_stmt))
  in
  QCheck.Test.make ~name:"NF-C print/parse roundtrip" ~count:200 (QCheck.make gen_prog)
    (fun p ->
      let reparsed = Nfc.parse (Nfc.to_string p) in
      reparsed.Nfc.body = p.Nfc.body)

let suite =
  [
    Alcotest.test_case "learn then translate" `Quick test_learn_then_translate;
    Alcotest.test_case "learn distinct flows" `Quick test_learn_distinct_flows_distinct_mappings;
    Alcotest.test_case "learn pool exhaustion" `Quick test_learn_pool_exhaustion;
    Alcotest.test_case "learn under interleaving" `Quick test_learn_under_interleaving;
    Alcotest.test_case "expiry recycles slots" `Quick test_expiry_recycles_slots;
    Alcotest.test_case "expiry spares active flows" `Quick test_expiry_spares_active_flows;
    Alcotest.test_case "pipeline processes all" `Quick test_pipeline_processes_all;
    Alcotest.test_case "pipeline bottleneck" `Quick test_pipeline_bottleneck_semantics;
    Alcotest.test_case "pipeline empty rejected" `Quick test_pipeline_empty_stages_rejected;
    Alcotest.test_case "pipeline vs consolidated" `Slow test_pipeline_vs_consolidated;
    Alcotest.test_case "pcap roundtrip" `Quick test_pcap_roundtrip;
    Alcotest.test_case "pcap file io" `Quick test_pcap_file_io;
    Alcotest.test_case "pcap bad input" `Quick test_pcap_bad_input;
    Alcotest.test_case "nfc print/parse roundtrip" `Quick test_nfc_print_parse_roundtrip;
    Helpers.qcheck qcheck_nfc_roundtrip;
  ]
