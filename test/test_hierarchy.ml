(* Multi-level hierarchy with MSHRs and asynchronous prefetch — the
   substrate every experiment's numbers rest on. *)

open Memsim

let cfg = Hierarchy.default_config

let small_cfg =
  (* Tiny caches so eviction scenarios are cheap to construct. *)
  {
    cfg with
    Hierarchy.l1_size = 512;
    l1_assoc = 2;
    l2_size = 2048;
    l2_assoc = 2;
    llc_size = 8192;
    llc_assoc = 2;
    mshr_count = 2;
  }

let mk ?(cfg = cfg) () = Hierarchy.create ~cfg ()

let test_cold_read_is_dram () =
  let h = mk () in
  let lat = Hierarchy.read h ~now:0 ~addr:0x10000 ~bytes:8 in
  Alcotest.(check int) "cold read pays DRAM latency" cfg.Hierarchy.lat_dram lat

let test_second_read_is_l1 () =
  let h = mk () in
  ignore (Hierarchy.read h ~now:0 ~addr:0x10000 ~bytes:8);
  let lat = Hierarchy.read h ~now:300 ~addr:0x10000 ~bytes:8 in
  Alcotest.(check int) "second read hits L1" cfg.Hierarchy.lat_l1 lat

let test_l2_hit_after_l1_eviction () =
  let h = mk ~cfg:small_cfg () in
  ignore (Hierarchy.read h ~now:0 ~addr:0 ~bytes:8);
  (* Evict line 0 from the tiny L1 (4 sets x 2 ways): lines 4 and 8 share
     its L1 set but land in different L2 sets (16 sets). *)
  ignore (Hierarchy.read h ~now:0 ~addr:(4 * 64) ~bytes:8);
  ignore (Hierarchy.read h ~now:0 ~addr:(8 * 64) ~bytes:8);
  let lat = Hierarchy.read h ~now:0 ~addr:0 ~bytes:8 in
  Alcotest.(check int) "read served from L2" small_cfg.Hierarchy.lat_l2 lat

let test_multi_line_stream_discount () =
  let h = mk () in
  (* 4 lines cold: first pays full DRAM, the next three pay the stream
     fraction (2/5 of 250 = 100). *)
  let lat = Hierarchy.read h ~now:0 ~addr:0x20000 ~bytes:256 in
  Alcotest.(check int) "streamed block read" (250 + (3 * 100)) lat

let test_lines_of () =
  let h = mk () in
  Alcotest.(check (list int)) "span two lines" [ 0x3F; 0x40 ]
    (Hierarchy.lines_of h ~addr:0xFC0 ~bytes:100);
  Alcotest.(check (list int)) "zero bytes" [] (Hierarchy.lines_of h ~addr:0xFC0 ~bytes:0)

let test_prefetch_then_ready () =
  let h = mk () in
  let issued = Hierarchy.prefetch h ~now:0 ~addr:0x30000 ~bytes:8 in
  Alcotest.(check int) "one fill issued" 1 issued;
  Alcotest.(check bool) "not ready immediately" false
    (Hierarchy.ready h ~now:1 ~addr:0x30000 ~bytes:8);
  Alcotest.(check bool) "ready after DRAM latency" true
    (Hierarchy.ready h ~now:cfg.Hierarchy.lat_dram ~addr:0x30000 ~bytes:8)

let test_prefetch_hides_latency () =
  let h = mk () in
  ignore (Hierarchy.prefetch h ~now:0 ~addr:0x30000 ~bytes:8);
  let lat = Hierarchy.read h ~now:(cfg.Hierarchy.lat_dram + 10) ~addr:0x30000 ~bytes:8 in
  Alcotest.(check int) "completed prefetch -> L1 hit" cfg.Hierarchy.lat_l1 lat

let test_demand_on_inflight_pays_residual () =
  let h = mk () in
  ignore (Hierarchy.prefetch h ~now:0 ~addr:0x30000 ~bytes:8);
  (* Demand read arrives 100 cycles in: waits the remaining 150 + L1. *)
  let lat = Hierarchy.read h ~now:100 ~addr:0x30000 ~bytes:8 in
  Alcotest.(check int) "residual wait" (150 + cfg.Hierarchy.lat_l1) lat;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "mshr wait recorded" 1 c.Memstats.mshr_waits;
  Alcotest.(check int) "wait cycles recorded" 150 c.Memstats.wait_cycles

let test_prefetch_redundant () =
  let h = mk () in
  ignore (Hierarchy.read h ~now:0 ~addr:0x40000 ~bytes:8);
  let issued = Hierarchy.prefetch h ~now:10 ~addr:0x40000 ~bytes:8 in
  Alcotest.(check int) "resident line not re-fetched" 0 issued;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "counted redundant" 1 c.Memstats.prefetch_redundant

let test_prefetch_pending_redundant () =
  let h = mk () in
  ignore (Hierarchy.prefetch h ~now:0 ~addr:0x40000 ~bytes:8);
  let issued = Hierarchy.prefetch h ~now:1 ~addr:0x40000 ~bytes:8 in
  Alcotest.(check int) "in-flight line not re-issued" 0 issued

let test_mshr_exhaustion () =
  let h = mk ~cfg:small_cfg () in
  (* 2 MSHRs: the third concurrent prefetch is dropped. *)
  ignore (Hierarchy.prefetch h ~now:0 ~addr:0x50000 ~bytes:8);
  ignore (Hierarchy.prefetch h ~now:0 ~addr:0x60000 ~bytes:8);
  let issued = Hierarchy.prefetch h ~now:0 ~addr:0x70000 ~bytes:8 in
  Alcotest.(check int) "dropped when MSHRs busy" 0 issued;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "drop counted" 1 c.Memstats.prefetch_dropped;
  Alcotest.(check int) "two outstanding" 2 (Hierarchy.mshr_pending_count h ~now:0)

let test_mshr_recycled_after_completion () =
  let h = mk ~cfg:small_cfg () in
  ignore (Hierarchy.prefetch h ~now:0 ~addr:0x50000 ~bytes:8);
  ignore (Hierarchy.prefetch h ~now:0 ~addr:0x60000 ~bytes:8);
  let issued =
    Hierarchy.prefetch h ~now:(small_cfg.Hierarchy.lat_dram + 1) ~addr:0x70000 ~bytes:8
  in
  Alcotest.(check int) "slot reused after completion" 1 issued

let test_prefetch_eviction_means_not_ready () =
  let h = mk ~cfg:{ small_cfg with Hierarchy.mshr_count = 16 } () in
  ignore (Hierarchy.prefetch h ~now:0 ~addr:0 ~bytes:8);
  (* Thrash line 0's set in both L1 (4 sets) and L2 (16 sets): multiples of
     line 16 conflict in both. *)
  List.iter
    (fun i -> ignore (Hierarchy.read h ~now:0 ~addr:(i * 16 * 64) ~bytes:8))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "evicted prefetched line is not ready" false
    (Hierarchy.ready h ~now:1000 ~addr:0 ~bytes:8)

let test_llc_prefetch_faster () =
  let h = mk () in
  ignore (Hierarchy.read h ~now:0 ~addr:0x80000 ~bytes:8);
  (* Push it out of L1+L2 but it stays in LLC; then a prefetch completes at
     LLC latency. *)
  Hierarchy.clear h;
  ignore (Cache.install (Hierarchy.llc h) 0x80000);
  ignore (Hierarchy.prefetch h ~now:0 ~addr:0x80000 ~bytes:8);
  Alcotest.(check bool) "ready at LLC latency" true
    (Hierarchy.ready h ~now:cfg.Hierarchy.lat_llc ~addr:0x80000 ~bytes:8)

let test_write_counts () =
  let h = mk () in
  ignore (Hierarchy.write h ~now:0 ~addr:0x90000 ~bytes:8);
  let c = Hierarchy.counters h in
  Alcotest.(check int) "write counted" 1 c.Memstats.writes;
  Alcotest.(check int) "write allocates" 1 c.Memstats.dram_fills

let test_counters_diff () =
  let h = mk () in
  ignore (Hierarchy.read h ~now:0 ~addr:0xA0000 ~bytes:8);
  let before = Hierarchy.counters h in
  ignore (Hierarchy.read h ~now:10 ~addr:0xA0000 ~bytes:8);
  let d = Memstats.diff (Hierarchy.counters h) before in
  Alcotest.(check int) "delta accesses" 1 d.Memstats.line_accesses;
  Alcotest.(check int) "delta l1 hits" 1 d.Memstats.l1_hits

let test_memstats_derived () =
  let s =
    {
      Memstats.zero with
      Memstats.line_accesses = 10;
      l1_hits = 6;
      l2_hits = 2;
      llc_hits = 1;
      dram_fills = 1;
      mshr_waits = 0;
    }
  in
  Alcotest.(check int) "l1 misses" 4 (Memstats.l1_misses s);
  Alcotest.(check int) "l2 misses" 2 (Memstats.l2_misses s);
  Alcotest.(check int) "llc misses" 1 (Memstats.llc_misses s);
  Alcotest.(check (float 0.0001)) "hit rate" 0.6 (Memstats.l1_hit_rate s)

let qcheck_read_latency_bounded =
  QCheck.Test.make ~name:"single-line read latency within [L1, DRAM]" ~count:300
    QCheck.(pair (int_bound 100_000) (int_bound 1_000_000))
    (fun (now, addr) ->
      let h = mk () in
      (* one byte: guaranteed single-line regardless of alignment *)
      let lat = Hierarchy.read h ~now ~addr ~bytes:1 in
      lat >= cfg.Hierarchy.lat_l1 && lat <= cfg.Hierarchy.lat_dram)

let qcheck_prefetch_makes_ready =
  QCheck.Test.make ~name:"issued prefetch is ready after DRAM latency" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun addr ->
      let h = mk () in
      ignore (Hierarchy.prefetch h ~now:0 ~addr ~bytes:8);
      Hierarchy.ready h ~now:(cfg.Hierarchy.lat_dram + 1) ~addr ~bytes:8)

let suite =
  [
    Alcotest.test_case "cold read = DRAM" `Quick test_cold_read_is_dram;
    Alcotest.test_case "second read = L1" `Quick test_second_read_is_l1;
    Alcotest.test_case "L2 hit after L1 eviction" `Quick test_l2_hit_after_l1_eviction;
    Alcotest.test_case "multi-line stream discount" `Quick test_multi_line_stream_discount;
    Alcotest.test_case "lines_of" `Quick test_lines_of;
    Alcotest.test_case "prefetch then ready" `Quick test_prefetch_then_ready;
    Alcotest.test_case "prefetch hides latency" `Quick test_prefetch_hides_latency;
    Alcotest.test_case "demand on in-flight pays residual" `Quick
      test_demand_on_inflight_pays_residual;
    Alcotest.test_case "redundant prefetch (resident)" `Quick test_prefetch_redundant;
    Alcotest.test_case "redundant prefetch (pending)" `Quick test_prefetch_pending_redundant;
    Alcotest.test_case "MSHR exhaustion drops" `Quick test_mshr_exhaustion;
    Alcotest.test_case "MSHR recycled" `Quick test_mshr_recycled_after_completion;
    Alcotest.test_case "evicted prefetch not ready" `Quick
      test_prefetch_eviction_means_not_ready;
    Alcotest.test_case "LLC-resident prefetch faster" `Quick test_llc_prefetch_faster;
    Alcotest.test_case "write counts" `Quick test_write_counts;
    Alcotest.test_case "counters diff" `Quick test_counters_diff;
    Alcotest.test_case "memstats derived metrics" `Quick test_memstats_derived;
    Helpers.qcheck qcheck_read_latency_bounded;
    Helpers.qcheck qcheck_prefetch_makes_ready;
  ]
