(* The differential execution oracle, in-tree: every generated program and
   every shipped composition must behave identically under all executors
   (RTC reference, Batch_rtc over batch sizes, Scheduler over both policies
   and task counts), and the oracle itself must detect and minimize
   injected divergences. *)

open Gunfu
open Check

let specs_dir = "../specs"

(* The acceptance sweep: this many program seeds, each exercised under
   every traffic profile. *)
let sweep_seeds = 51
let sweep_packets = 64

(* Observe each executor exactly once per case and use the same
   observation for both the differential diff and the executor-independent
   invariants — half the work of the CLI's two passes. *)
let exercise (case : Oracle.case) =
  let fresh () = case.Oracle.c_build ~packets:case.Oracle.c_packets in
  let repro () = case.Oracle.c_repro ~packets:case.Oracle.c_packets in
  let check_invariants label obs =
    match Invariants.check obs with
    | [] -> ()
    | viol :: _ ->
        Alcotest.failf "%s under %s violates %s: %s (replay: %s)" case.Oracle.c_name
          label viol.Invariants.v_rule viol.Invariants.v_detail (repro ())
  in
  let ref_obs = Oracle.observe Oracle.reference (fresh ()) in
  check_invariants Oracle.reference.Oracle.x_name ref_obs;
  List.iter
    (fun exec ->
      let obs = Oracle.observe exec (fresh ()) in
      (match Oracle.diff_observations ~reference:ref_obs obs with
      | None -> ()
      | Some detail ->
          Alcotest.failf "%s: %s diverges from rtc: %s (replay: %s)"
            case.Oracle.c_name exec.Oracle.x_name detail (repro ()));
      check_invariants exec.Oracle.x_name obs)
    Oracle.executors

let test_sweep profile () =
  for i = 0 to sweep_seeds - 1 do
    exercise (Progen.case ~seed:(1 + i) ~profile ~packets:sweep_packets)
  done

let test_spec_compositions () =
  let cases = Progen.spec_cases ~specs_dir ~seed:3 ~packets:96 () in
  Alcotest.(check int) "all shipped compositions covered"
    (List.length Progen.spec_names) (List.length cases);
  List.iter exercise cases

let test_executor_grid () =
  (* The comparison set the issue requires: batches, both policies over
     n_tasks in {1,2,4,8,16}, rtc as reference. *)
  let names = Oracle.executor_names in
  Alcotest.(check int) "reference + 3 batches + 2 policies x 5 task counts" 14
    (List.length names);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem n names))
    [ "rtc"; "batch-1"; "batch-8"; "batch-32"; "rr-1"; "rr-16"; "rf-1"; "rf-16" ]

(* The compiler passes the analyzer reasons about — match removal and
   redundant-prefetch removal — must be observation-preserving: the
   oracle's full diff (inputs, counters, per-flow output streams, final
   state digest) over every shipped composition and every opts
   combination, against the default-opts build. *)
let test_opts_observation_preserving () =
  let observe_with opts name =
    let case = Progen.spec_case ~opts ~specs_dir ~name ~seed:11 ~packets:96 () in
    Oracle.observe Oracle.reference (case.Oracle.c_build ~packets:case.Oracle.c_packets)
  in
  List.iter
    (fun name ->
      let ref_obs = observe_with Compiler.default_opts name in
      List.iter
        (fun (mr, pd) ->
          let opts =
            { Compiler.default_opts with Compiler.match_removal = mr; prefetch_dedup = pd }
          in
          match Oracle.diff_observations ~reference:ref_obs (observe_with opts name) with
          | None -> ()
          | Some d ->
              Alcotest.failf "%s with match_removal=%b prefetch_dedup=%b diverges: %s" name
                mr pd d)
        [ (false, false); (true, false); (true, true) ])
    Progen.spec_names

(* ----- the oracle's own machinery ----- *)

let sample_observation () =
  let case = Progen.case ~seed:5 ~profile:"uniform" ~packets:32 in
  Oracle.observe Oracle.reference (case.Oracle.c_build ~packets:32)

let test_identical_runs_do_not_diverge () =
  let case = Progen.case ~seed:5 ~profile:"uniform" ~packets:32 in
  let obs1 = Oracle.observe Oracle.reference (case.Oracle.c_build ~packets:32) in
  let obs2 = Oracle.observe Oracle.reference (case.Oracle.c_build ~packets:32) in
  Alcotest.(check (option string)) "fresh rebuilds of one seed are identical" None
    (Oracle.diff_observations ~reference:obs1 obs2)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let expect_diff name part ref_obs obs =
  match Oracle.diff_observations ~reference:ref_obs obs with
  | None -> Alcotest.failf "%s: tampered observation not flagged" name
  | Some d ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S mentions %S" name d part)
        true (contains ~sub:part d)

let test_diff_detects_tampering () =
  let obs = sample_observation () in
  expect_diff "packet count" "completed-packet counts differ" obs
    {
      obs with
      Oracle.o_run = { obs.Oracle.o_run with Metrics.packets = obs.Oracle.o_run.Metrics.packets + 1 };
    };
  expect_diff "drop count" "drop counts differ" obs
    {
      obs with
      Oracle.o_run = { obs.Oracle.o_run with Metrics.drops = obs.Oracle.o_run.Metrics.drops + 1 };
    };
  expect_diff "wire bytes" "wire byte counts differ" obs
    {
      obs with
      Oracle.o_run =
        { obs.Oracle.o_run with Metrics.wire_bytes = obs.Oracle.o_run.Metrics.wire_bytes + 1 };
    };
  expect_diff "input stream" "input streams differ" obs
    { obs with Oracle.o_inputs = List.tl obs.Oracle.o_inputs };
  expect_diff "state digest" "state digests differ" obs
    { obs with Oracle.o_state = "deadbeefdeadbeef" };
  (match obs.Oracle.o_emits with
  | e :: rest ->
      expect_diff "per-flow stream" "diverges at its packet" obs
        { obs with Oracle.o_emits = { e with Oracle.e_aux = e.Oracle.e_aux + 1 } :: rest }
  | [] -> Alcotest.fail "sample observation produced no emits")

(* A case whose state digest changes on every rebuild: the reference and
   every comparison run see different "final state", so the oracle must
   report a divergence at any workload length — and minimize it to one
   packet. *)
let broken_case () =
  let base = Progen.case ~seed:5 ~profile:"uniform" ~packets:32 in
  let builds = ref 0 in
  {
    base with
    Oracle.c_name = "broken-digest";
    Oracle.c_build =
      (fun ~packets ->
        incr builds;
        let n = !builds in
        let inst = base.Oracle.c_build ~packets in
        { inst with Oracle.digest = (fun fp -> Gunfu.Fingerprint.feed_int fp n) });
  }

let test_check_case_reports_divergence () =
  match Oracle.check_case (broken_case ()) with
  | None -> Alcotest.fail "injected state divergence not reported"
  | Some d ->
      Alcotest.(check string) "first comparison executor blamed" "batch-1"
        d.Oracle.d_exec;
      Alcotest.(check int) "minimized to a single packet" 1 d.Oracle.d_packets;
      Alcotest.(check bool) "detail names the state digest" true
        (contains ~sub:"state digests differ" d.Oracle.d_detail);
      Alcotest.(check bool) "repro command present" true
        (contains ~sub:"gunfu_cli check" d.Oracle.d_repro);
      (* The pretty-printer must carry seed + replay line. *)
      let rendered = Fmt.str "%a" Oracle.pp_divergence d in
      Alcotest.(check bool) "rendering includes replay" true
        (contains ~sub:"replay:" rendered)

let test_minimize_shrinks () =
  let case = broken_case () in
  let exec = List.hd Oracle.executors in
  Alcotest.(check int) "always-diverging case shrinks to 1 packet" 1
    (Oracle.minimize case exec ~packets:16)

(* Any (seed, profile, prefix length, executor) drawn at random agrees
   with rtc — the differential claim as a QCheck property. *)
let qcheck_random_case_agrees =
  QCheck.Test.make ~name:"random generated case agrees with rtc" ~count:12
    QCheck.(
      quad (int_range 1 10_000)
        (int_bound (List.length Progen.profiles - 1))
        (int_range 4 48)
        (int_bound (List.length Oracle.executors - 1)))
    (fun (seed, pi, packets, xi) ->
      let profile = List.nth Progen.profiles pi in
      let case = Progen.case ~seed ~profile ~packets in
      let exec = List.nth Oracle.executors xi in
      Oracle.diverges case exec ~packets = None)

let suite =
  [
    Alcotest.test_case "executor grid" `Quick test_executor_grid;
    Alcotest.test_case "identical runs agree" `Quick test_identical_runs_do_not_diverge;
    Alcotest.test_case "diff detects tampering" `Quick test_diff_detects_tampering;
    Alcotest.test_case "check_case reports divergence" `Quick test_check_case_reports_divergence;
    Alcotest.test_case "minimize shrinks repro" `Quick test_minimize_shrinks;
    Helpers.qcheck qcheck_random_case_agrees;
    Alcotest.test_case "spec compositions agree" `Quick test_spec_compositions;
    Alcotest.test_case "opts observation-preserving" `Quick test_opts_observation_preserving;
    Alcotest.test_case "sweep: uniform" `Quick (test_sweep "uniform");
    Alcotest.test_case "sweep: zipf" `Quick (test_sweep "zipf");
    Alcotest.test_case "sweep: burst" `Quick (test_sweep "burst");
    Alcotest.test_case "sweep: mix" `Quick (test_sweep "mix");
  ]
