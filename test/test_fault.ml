(* The fault-injection plane: deterministic schedules, containment in every
   executor, graceful degradation (poisoning, typed overflow), and — the
   other half of the contract — byte-identical behaviour when injection is
   disabled. *)

open Gunfu
open Check

(* ----- plan determinism ----- *)

let test_plan_deterministic () =
  let a = Faultgen.create ~rate_ppm:50_000 ~seed:7 () in
  let b = Faultgen.create ~rate_ppm:50_000 ~seed:7 () in
  for i = 0 to 9_999 do
    if Faultgen.decide a i <> Faultgen.decide b i then
      Alcotest.failf "plans with equal seeds disagree at index %d" i
  done;
  let c = Faultgen.create ~rate_ppm:50_000 ~seed:8 () in
  let differs = ref false in
  for i = 0 to 9_999 do
    if Faultgen.decide a i <> Faultgen.decide c i then differs := true
  done;
  Alcotest.(check bool) "different seeds give different schedules" true !differs

let test_plan_rate () =
  let t = Faultgen.create ~rate_ppm:10_000 ~seed:5 () in
  let n = Faultgen.planned t ~packets:100_000 in
  if n < 500 || n > 2_000 then
    Alcotest.failf "1%% plan fired %d times over 100000 packets" n;
  Alcotest.(check int) "rate 0 never fires" 0
    (Faultgen.planned (Faultgen.create ~rate_ppm:0 ~seed:5 ()) ~packets:10_000)

(* ----- plane unit behaviour ----- *)

let test_poisoning () =
  let p = Fault.create ~poison_threshold:2 () in
  Alcotest.(check bool) "fault passes through complete" true
    (Fault.complete p ~flow:7 ~faulted:(Some Fault.Action_raise)
    = Some Fault.Action_raise);
  Alcotest.(check bool) "not yet degraded" false (Fault.degraded p);
  ignore (Fault.complete p ~flow:7 ~faulted:(Some Fault.Action_raise));
  Alcotest.(check bool) "degraded after threshold" true (Fault.degraded p);
  Alcotest.(check int) "one flow poisoned" 1 (Fault.poisoned_flows p);
  (* A clean completion of the poisoned flow is still quarantined. *)
  Alcotest.(check bool) "poisoned flow completion converted" true
    (Fault.complete p ~flow:7 ~faulted:None = Some Fault.Poisoned);
  Alcotest.(check bool) "other flows unaffected" true
    (Fault.complete p ~flow:8 ~faulted:None = None);
  (* A success between faults resets the consecutive counter. *)
  ignore (Fault.complete p ~flow:9 ~faulted:(Some Fault.Parse_error));
  ignore (Fault.complete p ~flow:9 ~faulted:None);
  ignore (Fault.complete p ~flow:9 ~faulted:(Some Fault.Parse_error));
  Alcotest.(check int) "interleaved success prevents poisoning" 1
    (Fault.poisoned_flows p);
  Alcotest.(check int) "faulted counts every quarantined completion" 5
    (Fault.faulted p)

let test_guard_contains () =
  let worker = Worker.create ~id:0 () in
  let ctx = Worker.ctx worker in
  let p = Fault.create () in
  let task = Nftask.create 0 in
  let boom =
    Action.make ~name:"boom" (fun _ _ -> failwith "organic bug in NF code")
  in
  (match Fault.guard p ~nf:"nf_x" boom ctx task with
  | Event.Faulted "action" -> ()
  | e -> Alcotest.failf "expected FAULT[action], got %s" (Event.to_key e));
  let shed =
    Action.make ~name:"shed" (fun _ _ ->
        raise (Fault.Fault (Fault.Table_overflow, "nat_tbl")))
  in
  (match Fault.guard p ~nf:"nf_x" shed ctx task with
  | Event.Faulted "overflow" -> ()
  | e -> Alcotest.failf "expected FAULT[overflow], got %s" (Event.to_key e));
  Alcotest.(check bool) "taxonomy attributes both faults" true
    (Fault.counts p
    = [ ("nat_tbl", Fault.Table_overflow, 1); ("nf_x", Fault.Action_raise, 1) ]);
  (* A clean action is untouched by the barrier. *)
  let ok = Action.make ~name:"ok" (fun _ _ -> Event.Match_success) in
  Alcotest.(check bool) "clean action passes through" true
    (Event.equal (Fault.guard p ~nf:"nf_x" ok ctx task) Event.Match_success)

let test_faulted_event_roundtrip () =
  List.iter
    (fun r ->
      let e = Event.Faulted (Fault.reason_to_key r) in
      Alcotest.(check bool)
        ("event key roundtrip for " ^ Fault.reason_to_key r)
        true
        (Event.equal (Event.of_key (Event.to_key e)) e);
      Alcotest.(check bool) "reason recovered" true
        (Fault.reason_of_event e = Some r))
    [
      Fault.Parse_error; Fault.Table_overflow; Fault.Action_raise;
      Fault.Mshr_stall; Fault.Poisoned;
    ]

(* ----- typed cuckoo overflow policies ----- *)

(* Fill every slot of the table: once population = buckets x slots, any
   insert of a fresh key must reject no matter how the displacement rng
   rolls — a single rejected insert proves much less (retrying the same key
   draws a different walk and may succeed). *)
let saturate table =
  let nslots =
    Structures.Cuckoo.nbuckets table * Structures.Cuckoo.slots_per_bucket
  in
  let key = ref 0x10000000L in
  let attempts = ref 0 in
  while Structures.Cuckoo.population table < nslots && !attempts < 1_000_000 do
    ignore (Structures.Cuckoo.insert table ~key:!key ~value:0);
    key := Int64.add !key 1L;
    incr attempts
  done;
  if Structures.Cuckoo.population table < nslots then
    Alcotest.fail "could not saturate the cuckoo table";
  !key

let test_cuckoo_policies () =
  let t = Structures.Cuckoo.create (Memsim.Layout.create ()) ~label:"c" ~capacity:16 () in
  let key = ref (saturate t) in
  let full_pop = Structures.Cuckoo.population t in
  (* Drop_new: rejected, population unchanged. *)
  (match Structures.Cuckoo.insert_policy t ~policy:Structures.Cuckoo.Drop_new ~key:!key ~value:0 with
  | Structures.Cuckoo.Rejected -> ()
  | _ -> Alcotest.fail "Drop_new must reject on overflow");
  Alcotest.(check int) "Drop_new leaves population" full_pop
    (Structures.Cuckoo.population t);
  (* Shed_flow: also rejected at the structure level (the caller faults). *)
  (match Structures.Cuckoo.insert_policy t ~policy:Structures.Cuckoo.Shed_flow ~key:!key ~value:0 with
  | Structures.Cuckoo.Rejected -> ()
  | _ -> Alcotest.fail "Shed_flow must reject at the structure level");
  (* Evict_lru: the new key gets in, a victim comes out, population holds. *)
  (match Structures.Cuckoo.insert_policy t ~policy:Structures.Cuckoo.Evict_lru ~key:!key ~value:99 with
  | Structures.Cuckoo.Evicted { victim_key; _ } ->
      Alcotest.(check bool) "victim was a resident" true
        (victim_key >= 0x10000000L && victim_key < !key);
      Alcotest.(check bool) "victim no longer resident" true
        (Structures.Cuckoo.lookup t victim_key = None)
  | _ -> Alcotest.fail "Evict_lru must evict on overflow");
  Alcotest.(check bool) "new key resident after eviction" true
    (Structures.Cuckoo.lookup t !key = Some 99);
  Alcotest.(check int) "population unchanged by eviction" full_pop
    (Structures.Cuckoo.population t);
  (* Updating an existing key is never an overflow. *)
  (match Structures.Cuckoo.insert_policy t ~policy:Structures.Cuckoo.Drop_new ~key:!key ~value:7 with
  | Structures.Cuckoo.Updated -> ()
  | _ -> Alcotest.fail "existing key must update in place");
  List.iter
    (fun p ->
      Alcotest.(check bool) "policy name roundtrip" true
        (Structures.Cuckoo.policy_of_string (Structures.Cuckoo.policy_to_string p)
        = Some p))
    [ Structures.Cuckoo.Drop_new; Structures.Cuckoo.Evict_lru; Structures.Cuckoo.Shed_flow ]

(* ----- NAT learner under match-table pressure ----- *)

(* A dynamic NAT whose match table is pre-saturated with alien keys: every
   learner insert hits Rejected, exercising the overflow policy on the
   data path. *)
let pressured_nat policy =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let nat = Nfs.Nat.create layout ~name:"nat" ~overflow:policy ~n_flows:64 () in
  ignore (saturate (Nfs.Classifier.table nat.Nfs.Nat.classifier));
  let gen =
    Traffic.Flowgen.create ~seed:31 ~n_flows:8 ~size_model:(Traffic.Flowgen.Fixed 128) ()
  in
  let pool = Netcore.Packet.Pool.create layout ~count:64 in
  let source = Workload.of_flowgen gen ~pool ~count:48 in
  (worker, Nfs.Nat.dynamic_program nat, source)

let test_nat_shed_flow_contained () =
  let worker, program, source = pressured_nat Structures.Cuckoo.Shed_flow in
  let r = Rtc.run worker program source in
  Alcotest.(check int) "every packet accounted" 48 r.Metrics.packets;
  Alcotest.(check bool) "overflows quarantined, not crashed" true
    (r.Metrics.faulted > 0);
  Alcotest.(check bool) "taxonomy blames the NAT's overflow" true
    (List.exists
       (fun (nf, reason, n) -> nf = "nat" && reason = Fault.Table_overflow && n > 0)
       r.Metrics.faults);
  Alcotest.(check bool) "repeated overflow degrades the NF" true r.Metrics.degraded;
  Alcotest.(check int) "conservation: emits + drops + faulted = offered" 48
    ((r.Metrics.packets - r.Metrics.drops - r.Metrics.faulted)
    + r.Metrics.drops + r.Metrics.faulted)

let test_nat_drop_new_is_clean_drop () =
  let worker, program, source = pressured_nat Structures.Cuckoo.Drop_new in
  let r = Rtc.run worker program source in
  Alcotest.(check int) "every packet accounted" 48 r.Metrics.packets;
  Alcotest.(check int) "no faults under Drop_new" 0 r.Metrics.faulted;
  Alcotest.(check bool) "rejected flows are plain drops" true (r.Metrics.drops > 0)

(* ----- executors under an injected schedule ----- *)

let observe_with ?plan exec case =
  Oracle.observe ?plan exec (case.Oracle.c_build ~packets:case.Oracle.c_packets)

let assert_invariants name obs =
  match Invariants.check obs with
  | [] -> ()
  | viol :: _ ->
      Alcotest.failf "%s violates %s: %s" name viol.Invariants.v_rule
        viol.Invariants.v_detail

let test_all_executors_agree_under_faults () =
  List.iter
    (fun profile ->
      let case = Progen.case ~seed:11 ~profile ~packets:64 in
      let plan = Faultgen.create ~rate_ppm:150_000 ~seed:11 () in
      let ref_obs = observe_with ~plan Oracle.reference case in
      Alcotest.(check bool)
        (profile ^ ": schedule actually injects")
        true
        (ref_obs.Oracle.o_run.Metrics.faulted > 0);
      assert_invariants ("rtc/" ^ profile) ref_obs;
      List.iter
        (fun exec ->
          let obs = observe_with ~plan exec case in
          (match Oracle.diff_observations ~reference:ref_obs obs with
          | None -> ()
          | Some d ->
              Alcotest.failf "%s diverges under faults (%s): %s" exec.Oracle.x_name
                profile d);
          assert_invariants (exec.Oracle.x_name ^ "/" ^ profile) obs)
        Oracle.executors)
    [ "uniform"; "zipf" ]

let test_rf_drain_starvation_regression () =
  (* Regression: gen-syn-42 at 128 packets decides a single Stall_mshrs at
     pull index 116, which drops an rf-4 task's prefetch right as the
     source drains. The Ready_first scan used to prefer no-op visits of
     idle slots over the unready task, so its fill was never re-issued and
     the run spun forever. The fix gates idle slots on loadable work; this
     case must now terminate and agree with the reference. *)
  let case = Progen.case ~seed:42 ~profile:"uniform" ~packets:128 in
  let plan = Faultgen.create ~rate_ppm:10_000 ~seed:42 () in
  let ref_obs = observe_with ~plan Oracle.reference case in
  let rf4 =
    List.find (fun e -> e.Oracle.x_name = "rf-4") Oracle.executors
  in
  let obs = observe_with ~plan rf4 case in
  (match Oracle.diff_observations ~reference:ref_obs obs with
  | None -> ()
  | Some d -> Alcotest.failf "rf-4 diverges: %s" d);
  assert_invariants "rf-4/starvation" obs

let test_heavy_faults_poison_flows () =
  (* At a brutal 60% rate on a skewed profile some flow must hit the
     consecutive-fault threshold; the run degrades but still terminates
     with every packet accounted. *)
  let case = Progen.case ~seed:13 ~profile:"zipf" ~packets:96 in
  let plan = Faultgen.create ~rate_ppm:600_000 ~seed:13 () in
  let obs = observe_with ~plan Oracle.reference case in
  let r = obs.Oracle.o_run in
  assert_invariants "rtc/heavy" obs;
  Alcotest.(check bool) "run degrades" true r.Metrics.degraded;
  Alcotest.(check bool) "poisoned completions in the taxonomy" true
    (List.exists
       (fun (nf, reason, _) -> nf = "flow" && reason = Fault.Poisoned)
       r.Metrics.faults)

let test_disabled_injection_identical () =
  (* Rate 0 threads a live (empty) plane through the executor; the
     observable run must be indistinguishable from no plane at all. *)
  let strip e =
    ( e.Oracle.e_flow, e.Oracle.e_aux, e.Oracle.e_event, e.Oracle.e_dropped,
      e.Oracle.e_wire, e.Oracle.e_pkt, e.Oracle.e_clock )
  in
  List.iter
    (fun exec ->
      let case = Progen.case ~seed:17 ~profile:"mix" ~packets:64 in
      let plain = observe_with exec case in
      let zero =
        observe_with ~plan:(Faultgen.create ~rate_ppm:0 ~seed:17 ()) exec case
      in
      Alcotest.(check string)
        (exec.Oracle.x_name ^ ": state digest identical")
        plain.Oracle.o_state zero.Oracle.o_state;
      Alcotest.(check bool)
        (exec.Oracle.x_name ^ ": emit streams identical")
        true
        (List.map strip plain.Oracle.o_emits = List.map strip zero.Oracle.o_emits);
      Alcotest.(check int)
        (exec.Oracle.x_name ^ ": cycle-identical")
        plain.Oracle.o_run.Metrics.cycles zero.Oracle.o_run.Metrics.cycles;
      Alcotest.(check int) "no faults" 0 zero.Oracle.o_run.Metrics.faulted)
    [ Oracle.reference; List.hd Oracle.executors; List.nth Oracle.executors 5 ]

(* The specialized hot path's exception barrier must be byte-identical to
   Fault.guard: under a 1-2% injected schedule, every executor running
   specialized agrees with the interpreted reference — same faulted
   counts, same taxonomy, same per-flow streams, same state digests. *)
let test_specialized_agrees_under_faults () =
  List.iter
    (fun profile ->
      let case = Progen.case ~seed:19 ~profile ~packets:96 in
      let plan = Faultgen.create ~rate_ppm:15_000 ~seed:19 () in
      Alcotest.(check bool)
        (profile ^ ": 1.5% schedule actually injects")
        true
        (Faultgen.planned plan ~packets:96 > 0);
      let ref_obs = observe_with ~plan Oracle.reference case in
      assert_invariants ("rtc/" ^ profile) ref_obs;
      List.iter
        (fun exec ->
          let obs =
            Oracle.observe ~specialize:true ~plan exec
              (case.Oracle.c_build ~packets:case.Oracle.c_packets)
          in
          (match Oracle.diff_observations ~reference:ref_obs obs with
          | None -> ()
          | Some d ->
              Alcotest.failf "%s diverges under faults (%s): %s" obs.Oracle.o_label
                profile d);
          assert_invariants (obs.Oracle.o_label ^ "/" ^ profile) obs)
        (Oracle.reference :: Oracle.executors))
    [ "uniform"; "zipf" ]

(* Property: for any seed, profile and executor, a moderate injected
   schedule never produces a cross-executor divergence. *)
let prop_no_divergence_under_faults =
  QCheck.Test.make ~name:"oracle agrees under injected faults" ~count:20
    QCheck.(
      triple (int_bound 1_000) (int_bound 3)
        (int_bound (List.length Oracle.executors - 1)))
    (fun (seed, pi, xi) ->
      let profile = List.nth Progen.profiles pi in
      let case = Progen.case ~seed:(seed + 1) ~profile ~packets:48 in
      let plan = Faultgen.create ~rate_ppm:120_000 ~seed:(seed + 1) () in
      let exec = List.nth Oracle.executors xi in
      Oracle.diverges ~plan case exec ~packets:48 = None)

(* Same property with the executor under test specialized. *)
let prop_specialized_no_divergence_under_faults =
  QCheck.Test.make ~name:"specialized path agrees under injected faults" ~count:15
    QCheck.(
      triple (int_bound 1_000) (int_bound 3)
        (int_bound (List.length Oracle.executors - 1)))
    (fun (seed, pi, xi) ->
      let profile = List.nth Progen.profiles pi in
      let case = Progen.case ~seed:(seed + 1) ~profile ~packets:48 in
      let plan = Faultgen.create ~rate_ppm:120_000 ~seed:(seed + 1) () in
      let exec = List.nth Oracle.executors xi in
      Oracle.diverges ~plan ~specialize:true case exec ~packets:48 = None)

let suite =
  [
    Alcotest.test_case "plan is deterministic" `Quick test_plan_deterministic;
    Alcotest.test_case "plan respects rate" `Quick test_plan_rate;
    Alcotest.test_case "poisoning after consecutive faults" `Quick test_poisoning;
    Alcotest.test_case "guard contains action exceptions" `Quick test_guard_contains;
    Alcotest.test_case "faulted event key roundtrip" `Quick test_faulted_event_roundtrip;
    Alcotest.test_case "cuckoo overflow policies" `Quick test_cuckoo_policies;
    Alcotest.test_case "nat shed-flow overflow contained" `Quick
      test_nat_shed_flow_contained;
    Alcotest.test_case "nat drop-new overflow drops" `Quick
      test_nat_drop_new_is_clean_drop;
    Alcotest.test_case "all executors agree under faults" `Slow
      test_all_executors_agree_under_faults;
    Alcotest.test_case "rf drain starvation regression" `Quick
      test_rf_drain_starvation_regression;
    Alcotest.test_case "heavy faults poison flows" `Quick test_heavy_faults_poison_flows;
    Alcotest.test_case "disabled injection is identical" `Quick
      test_disabled_injection_identical;
    Alcotest.test_case "specialized path agrees under faults" `Slow
      test_specialized_agrees_under_faults;
    Helpers.qcheck prop_no_divergence_under_faults;
    Helpers.qcheck prop_specialized_no_divergence_under_faults;
  ]
