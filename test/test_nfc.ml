(* NF-C DSL: lexer, parser, interpreter, isolation. *)

open Gunfu

(* A toy binding over two int tables: "Packet" fields and "PerFlowState"
   fields, plus TempState registers. Reads/writes are logged so tests can
   assert what state a program touched. *)
type env = {
  pkt : (string, int) Hashtbl.t;
  pfs : (string, int) Hashtbl.t;
  tmp : (string, int) Hashtbl.t;
  mutable log : (string * string) list;  (* (op, scope.field) *)
}

let env () =
  { pkt = Hashtbl.create 8; pfs = Hashtbl.create 8; tmp = Hashtbl.create 8; log = [] }

let scope_name = function
  | Nfc.Packet -> "Packet"
  | Nfc.Per_flow -> "PerFlowState"
  | Nfc.Sub_flow -> "SubFlowState"
  | Nfc.Control -> "ControlState"
  | Nfc.Temp -> "TempState"
  | Nfc.Match_state -> "MatchState"

let binding e : Nfc.binding =
  let table = function
    | Nfc.Packet -> e.pkt
    | Nfc.Per_flow -> e.pfs
    | Nfc.Temp -> e.tmp
    | s -> raise (Nfc.Nfc_error ("scope not bound: " ^ scope_name s))
  in
  {
    Nfc.read_field =
      (fun _ctx _task scope field ->
        e.log <- ("r", scope_name scope ^ "." ^ field) :: e.log;
        Option.value ~default:0 (Hashtbl.find_opt (table scope) field));
    write_field =
      (fun _ctx _task scope field v ->
        e.log <- ("w", scope_name scope ^ "." ^ field) :: e.log;
        Hashtbl.replace (table scope) field v);
  }

let worker = lazy (Worker.create ~id:99 ())

let run_action action =
  let task = Nftask.create 0 in
  Nftask.load task ~cs:0 ();
  Action.execute action (Worker.ctx (Lazy.force worker)) task

let compile ?default_event e src = Nfc.compile ?default_event ~binding:(binding e) src

(* ----- parsing ----- *)

let test_parse_listing4 () =
  let p =
    Nfc.parse
      "NFAction(flow_mapper) { Packet.src_ip = PerFlowState.ip; Packet.dst_port = PerFlowState.port; Emit(Event_Packet); }"
  in
  Alcotest.(check string) "action name" "flow_mapper" p.Nfc.action_name;
  Alcotest.(check int) "three statements" 3 (List.length p.Nfc.body)

let test_parse_comments () =
  let p = Nfc.parse "NFAction(x) { // set field\n Packet.a = 1; }" in
  Alcotest.(check int) "comment skipped" 1 (List.length p.Nfc.body)

let test_parse_temporaries_collected () =
  let p =
    Nfc.parse
      "NFAction(x) { TempState.t1 = 1; TempState.t2 = TempState.t1 + TempState.t3; Emit(done); }"
  in
  Alcotest.(check (list string)) "temporaries found (decl order)" [ "t1"; "t2"; "t3" ]
    p.Nfc.temporaries

let test_parse_errors () =
  List.iter
    (fun src ->
      match Nfc.parse src with
      | exception Nfc.Nfc_error _ -> ()
      | _ -> Alcotest.fail ("accepted bad program: " ^ src))
    [
      "Packet.a = 1;";
      "NFAction() { }";
      "NFAction(x) { Packet.a = ; }";
      "NFAction(x) { Unknown.a = 1; }";
      "NFAction(x) { Packet.a = 1 }";
      "NFAction(x) { Packet.a = 1; ";
      "NFAction(x) { } trailing";
    ]

let test_parse_huge_int_literal () =
  (* An out-of-range literal is a syntax error (Nfc_error), not a crash
     or a silently wrapped value. *)
  match Nfc.parse "NFAction(x) { Packet.a = 99999999999999999999999999; }" with
  | exception Nfc.Nfc_error msg ->
      Alcotest.(check bool) "names the literal" true
        (String.length msg > 0 && String.contains msg '9')
  | _ -> Alcotest.fail "oversized integer literal must raise Nfc_error"

(* ----- evaluation ----- *)

let test_assignment_and_arith () =
  let e = env () in
  Hashtbl.replace e.pfs "ip" 42;
  let a = compile e "NFAction(x) { Packet.out = PerFlowState.ip * 2 + 1; Emit(done); }" in
  let ev = run_action a in
  Alcotest.(check int) "arithmetic" 85 (Hashtbl.find e.pkt "out");
  Alcotest.(check string) "emitted event" "done" (Event.to_key ev)

let test_operator_precedence () =
  let e = env () in
  let a = compile e "NFAction(x) { TempState.r = 2 + 3 * 4 - 1; Emit(done); }" in
  ignore (run_action a);
  Alcotest.(check int) "2+3*4-1 = 13" 13 (Hashtbl.find e.tmp "r")

let test_parens_and_mod () =
  let e = env () in
  let a = compile e "NFAction(x) { TempState.r = (2 + 3) * 4 % 7; Emit(done); }" in
  ignore (run_action a);
  Alcotest.(check int) "(2+3)*4 mod 7 = 6" 6 (Hashtbl.find e.tmp "r")

let test_comparison_and_if () =
  let e = env () in
  Hashtbl.replace e.pkt "port" 80;
  let a =
    compile e
      "NFAction(x) { if (Packet.port == 80) { TempState.hit = 1; Emit(web); } else { Emit(other); } }"
  in
  Alcotest.(check string) "took then-branch" "web" (Event.to_key (run_action a));
  Alcotest.(check int) "side effect" 1 (Hashtbl.find e.tmp "hit");
  Hashtbl.replace e.pkt "port" 22;
  Alcotest.(check string) "took else-branch" "other" (Event.to_key (run_action a))

let test_if_without_else_falls_through () =
  let e = env () in
  Hashtbl.replace e.pkt "v" 0;
  let a = compile e "NFAction(x) { if (Packet.v > 10) { Emit(big); } Emit(small); }" in
  Alcotest.(check string) "falls through to next stmt" "small" (Event.to_key (run_action a))

let test_drop_statement () =
  let e = env () in
  let a = compile e "NFAction(x) { Drop(); }" in
  Alcotest.(check bool) "drop event" true (Event.equal Event.Drop_packet (run_action a))

let test_emit_event_packet_translation () =
  let e = env () in
  let a = compile e "NFAction(x) { Emit(Event_Packet); }" in
  Alcotest.(check string) "Event_Packet -> packet" "packet" (Event.to_key (run_action a));
  let a2 = compile e "NFAction(x) { Emit(MATCH_SUCCESS); }" in
  Alcotest.(check bool) "MATCH_SUCCESS passthrough" true
    (Event.equal Event.Match_success (run_action a2))

let test_default_event () =
  let e = env () in
  let a = compile ~default_event:(Event.User "fin") e "NFAction(x) { Packet.a = 1; }" in
  Alcotest.(check string) "no Emit -> default" "fin" (Event.to_key (run_action a))

let test_emit_stops_execution () =
  let e = env () in
  let a = compile e "NFAction(x) { Emit(done); Packet.after = 1; }" in
  ignore (run_action a);
  Alcotest.(check bool) "statements after Emit not executed" false
    (Hashtbl.mem e.pkt "after")

let test_division_by_zero_modulo () =
  let e = env () in
  let a = compile e "NFAction(x) { TempState.r = 1 % 0; Emit(done); }" in
  (match run_action a with
  | exception Nfc.Nfc_error _ -> ()
  | _ -> Alcotest.fail "modulo by zero must raise")

let test_isolation_unbound_scope () =
  (* The binding exposes only Packet/PerFlowState/TempState: touching
     ControlState is a compile-check violation surfaced at run time. *)
  let e = env () in
  let a = compile e "NFAction(x) { ControlState.cfg = 1; Emit(done); }" in
  match run_action a with
  | exception Nfc.Nfc_error msg ->
      Alcotest.(check bool) "names the scope" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "unbound scope access must raise"

let test_access_log () =
  let e = env () in
  Hashtbl.replace e.pfs "ip" 7;
  let a = compile e "NFAction(x) { Packet.src = PerFlowState.ip; Emit(done); }" in
  ignore (run_action a);
  Alcotest.(check (list (pair string string))) "exact state touched"
    [ ("w", "Packet.src"); ("r", "PerFlowState.ip") ]
    e.log

let test_cost_scales_with_body () =
  let e = env () in
  let small = compile e "NFAction(x) { Emit(done); }" in
  let big =
    compile e
      "NFAction(x) { Packet.a = 1 + 2 + 3; Packet.b = Packet.a * 2; Packet.c = Packet.b - 1; Emit(done); }"
  in
  Alcotest.(check bool) "bigger body costs more cycles" true
    (big.Action.base_cycles > small.Action.base_cycles)

let qcheck_arith_matches_ocaml =
  QCheck.Test.make ~name:"NF-C arithmetic agrees with OCaml" ~count:200
    QCheck.(triple (int_range 0 1000) (int_range 0 1000) (int_range 1 100))
    (fun (x, y, z) ->
      let e = env () in
      Hashtbl.replace e.pkt "x" x;
      Hashtbl.replace e.pkt "y" y;
      Hashtbl.replace e.pkt "z" z;
      let a =
        compile e
          "NFAction(q) { TempState.r = (Packet.x + Packet.y) * 2 - Packet.x % Packet.z; Emit(done); }"
      in
      ignore (run_action a);
      Hashtbl.find e.tmp "r" = ((x + y) * 2) - (x mod z))

let qcheck_print_parse_roundtrip =
  (* The printer emits exactly the surface syntax the parser accepts, and
     [of_body] collects temporaries the way [parse] does — so a generated
     AST survives print-then-parse bit-for-bit (the foundation under the
     symbolic checker's "the source we analyze is the source that ran"). *)
  QCheck.Test.make ~name:"print/parse round-trip on generated programs" ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let p = Check.Progen.random_nfc ~seed in
      Nfc.parse (Nfc.to_string p) = p)

let suite =
  [
    Alcotest.test_case "parse listing 4" `Quick test_parse_listing4;
    Alcotest.test_case "parse comments" `Quick test_parse_comments;
    Alcotest.test_case "temporaries collected" `Quick test_parse_temporaries_collected;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "oversized int literal" `Quick test_parse_huge_int_literal;
    Alcotest.test_case "assignment/arith" `Quick test_assignment_and_arith;
    Alcotest.test_case "operator precedence" `Quick test_operator_precedence;
    Alcotest.test_case "parens and mod" `Quick test_parens_and_mod;
    Alcotest.test_case "comparison and if" `Quick test_comparison_and_if;
    Alcotest.test_case "if fall-through" `Quick test_if_without_else_falls_through;
    Alcotest.test_case "drop" `Quick test_drop_statement;
    Alcotest.test_case "Event_Packet translation" `Quick test_emit_event_packet_translation;
    Alcotest.test_case "default event" `Quick test_default_event;
    Alcotest.test_case "emit stops execution" `Quick test_emit_stops_execution;
    Alcotest.test_case "modulo by zero" `Quick test_division_by_zero_modulo;
    Alcotest.test_case "isolation: unbound scope" `Quick test_isolation_unbound_scope;
    Alcotest.test_case "access log" `Quick test_access_log;
    Alcotest.test_case "cost scales with body" `Quick test_cost_scales_with_body;
    Helpers.qcheck qcheck_arith_matches_ocaml;
    Helpers.qcheck qcheck_print_parse_roundtrip;
  ]
