(* Deterministic PRNG. *)

open Memsim

let test_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false
    (Int64.equal (Rng.next_int64 a) (Rng.next_int64 b))

let test_copy_independence () =
  let a = Rng.create 9 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b);
  ignore (Rng.next_int64 a);
  (* advancing a does not advance b *)
  let a2 = Rng.next_int64 a and b2 = Rng.next_int64 b in
  Alcotest.(check bool) "streams diverge after independent draws" false (Int64.equal a2 b2)

let test_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_int_invalid () =
  let r = Rng.create 3 in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_int_in_range () =
  let r = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.int_in_range r ~lo:5 ~hi:9 in
    Alcotest.(check bool) "5 <= v <= 9" true (v >= 5 && v <= 9)
  done;
  Alcotest.(check int) "degenerate range" 3 (Rng.int_in_range r ~lo:3 ~hi:3)

let test_float_bounds () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_shuffle_permutation () =
  let r = Rng.create 6 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_shuffle_changes_order () =
  let r = Rng.create 6 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  Alcotest.(check bool) "order changed" true (arr <> Array.init 50 (fun i -> i))

let test_split_independent () =
  let r = Rng.create 8 in
  let s = Rng.split r in
  let a = Rng.next_int64 r and b = Rng.next_int64 s in
  Alcotest.(check bool) "split stream differs" false (Int64.equal a b)

let test_uniformity_coarse () =
  let r = Rng.create 11 in
  let buckets = Array.make 10 0 in
  let n = 20000 in
  for _ = 1 to n do
    let b = Rng.int r 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "each bucket within 20% of mean" true
        (abs (c - (n / 10)) < n / 50))
    buckets

let qcheck_int_bound =
  QCheck.Test.make ~name:"Rng.int always within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let qcheck_bits_nonneg =
  QCheck.Test.make ~name:"Rng.bits is non-negative" ~count:500 QCheck.small_int
    (fun seed ->
      let r = Rng.create seed in
      Rng.bits r >= 0)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy independence" `Quick test_copy_independence;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "int_in_range" `Quick test_int_in_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "shuffle changes order" `Quick test_shuffle_changes_order;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "coarse uniformity" `Quick test_uniformity_coarse;
    Helpers.qcheck qcheck_int_bound;
    Helpers.qcheck qcheck_bits_nonneg;
  ]
