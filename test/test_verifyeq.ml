(* Translation validation (verifyeq): the symbolic engine's simplifier
   and decision procedure, path summaries of NF-C actions, the per-pass
   equivalence checker proving every shipped composition and a generated
   sweep, the compiler's verify hook, and — the teeth — seeded
   miscompiles (a dropped prefetch, a flipped jump-table cell, an emit
   the control logic never wired, a reclassified key kind) each rejected
   with a path witness naming the control state. *)

open Gunfu
open Analysis

let specs_dir = "../specs"
let () = Register.install ()

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let pp_findings fs = Fmt.str "%a" (Fmt.list Report.pp_finding) fs

let errors fs = List.filter (fun f -> f.Report.severity = Report.Error) fs

(* ----- the simplifier ----- *)

let va = Sym.Var (Nfc.Packet, "a")

let test_simplify () =
  let eq name expected e =
    Alcotest.(check bool) name true (Sym.sexpr_equal expected (Sym.simplify e))
  in
  eq "x - x folds to 0" (Sym.Const 0) (Sym.SBin (Nfc.Sub, va, va));
  eq "x + 0 is x" va (Sym.SBin (Nfc.Add, va, Sym.Const 0));
  eq "x * 0 is 0" (Sym.Const 0) (Sym.SBin (Nfc.Mul, va, Sym.Const 0));
  eq "x & x is x" va (Sym.SBin (Nfc.And, va, va));
  eq "x <= x is 1" (Sym.Const 1) (Sym.SBin (Nfc.Le, va, va));
  eq "constants fold"
    (Sym.Const 20)
    (Sym.SBin (Nfc.Mul, Sym.SBin (Nfc.Add, Sym.Const 2, Sym.Const 3), Sym.Const 4));
  (* The raise is part of the path's meaning: never folded away. *)
  eq "modulo by zero survives"
    (Sym.SBin (Nfc.Mod, Sym.Const 1, Sym.Const 0))
    (Sym.SBin (Nfc.Mod, Sym.Const 1, Sym.Const 0))

(* ----- the decision procedure ----- *)

let decision =
  Alcotest.testable
    (fun ppf d ->
      Fmt.string ppf
        (match d with Sym.True -> "True" | Sym.False -> "False" | Sym.Unknown -> "Unknown"))
    ( = )

let test_decide_interval () =
  (* pc: a < 10. *)
  let pc = [ (Sym.SBin (Nfc.Lt, va, Sym.Const 10), true) ] in
  Alcotest.check decision "a < 12 under a < 10" Sym.True
    (Sym.decide pc (Sym.SBin (Nfc.Lt, va, Sym.Const 12)));
  Alcotest.check decision "a >= 10 under a < 10" Sym.False
    (Sym.decide pc (Sym.SBin (Nfc.Ge, va, Sym.Const 10)));
  Alcotest.check decision "a < 5 under a < 10 is open" Sym.Unknown
    (Sym.decide pc (Sym.SBin (Nfc.Lt, va, Sym.Const 5)));
  (* Negative polarity: !(a < 10), i.e. a >= 10. *)
  let nc = [ (Sym.SBin (Nfc.Lt, va, Sym.Const 10), false) ] in
  Alcotest.check decision "a > 5 under !(a < 10)" Sym.True
    (Sym.decide nc (Sym.SBin (Nfc.Gt, va, Sym.Const 5)));
  Alcotest.check decision "bare variable with no facts" Sym.Unknown
    (Sym.decide [] va);
  (* Truthiness facts. *)
  Alcotest.check decision "a under pc [a]" Sym.True
    (Sym.decide [ (va, true) ] va);
  Alcotest.check decision "a under pc [!a]" Sym.False
    (Sym.decide [ (va, false) ] va)

let test_decide_congruence () =
  (* pc: a >= 0 && a mod 4 == 1. The sign fact matters: OCaml's [mod]
     takes the dividend's sign, so the congruence is only usable once the
     dividend is provably non-negative. *)
  let m4 = Sym.SBin (Nfc.Mod, va, Sym.Const 4) in
  let pc =
    [
      (Sym.SBin (Nfc.Ge, va, Sym.Const 0), true);
      (Sym.SBin (Nfc.Eq, m4, Sym.Const 1), true);
    ]
  in
  Alcotest.check decision "a%4==3 refuted by a%4==1" Sym.False
    (Sym.decide pc (Sym.SBin (Nfc.Eq, m4, Sym.Const 3)));
  Alcotest.check decision "without the sign fact, soundly Unknown" Sym.Unknown
    (Sym.decide
       [ (Sym.SBin (Nfc.Eq, m4, Sym.Const 1), true) ]
       (Sym.SBin (Nfc.Eq, m4, Sym.Const 3)));
  Alcotest.check decision "a%4!=3 proven" Sym.True
    (Sym.decide pc (Sym.SBin (Nfc.Ne, m4, Sym.Const 3)));
  Alcotest.check decision "a%4==1 confirmed" Sym.True
    (Sym.decide pc (Sym.SBin (Nfc.Eq, m4, Sym.Const 1)))

(* ----- path summaries ----- *)

let test_summarize_branches () =
  let p =
    Nfc.parse
      "NFAction(t) { if (Packet.a < 10) { Packet.b = 1; Emit(EMIT); } else { Drop(); } }"
  in
  let s = Sym.summarize p in
  Alcotest.(check int) "two paths" 2 (List.length s.Sym.s_paths);
  Alcotest.(check bool) "nothing truncated" false s.Sym.s_truncated;
  Alcotest.(check int) "no statically decided branch" 0 (List.length s.Sym.s_decided);
  (match s.Sym.s_paths with
  | [ t; e ] ->
      Alcotest.(check bool) "then-path emits EMIT" true (t.Sym.p_exit = Sym.Exit_emit "EMIT");
      Alcotest.(check bool) "then-path writes b = 1" true
        (match t.Sym.p_writes with
        | [ (Nfc.Packet, "b", w) ] -> Sym.sexpr_equal w (Sym.Const 1)
        | _ -> false);
      Alcotest.(check bool) "else-path drops" true (e.Sym.p_exit = Sym.Exit_drop)
  | _ -> Alcotest.fail "expected then/else paths in source order");
  Alcotest.(check (list string)) "exit keys in path order" [ "EMIT"; "DROP" ]
    (Sym.exit_keys s)

let test_summarize_entry_substitution () =
  (* Writes are expressed over ENTRY values: the temp assignment
     substitutes into the later packet write. *)
  let p =
    Nfc.parse
      "NFAction(t) { TempState.t = Packet.a + 1; Packet.b = TempState.t * 2; Emit(EMIT); }"
  in
  let s = Sym.summarize p in
  match s.Sym.s_paths with
  | [ path ] ->
      let expected =
        Sym.SBin (Nfc.Mul, Sym.SBin (Nfc.Add, va, Sym.Const 1), Sym.Const 2)
      in
      Alcotest.(check bool) "Packet.b = (Packet.a + 1) * 2" true
        (List.exists
           (fun (sc, f, w) ->
             sc = Nfc.Packet && f = "b" && Sym.sexpr_equal w expected)
           path.Sym.p_writes)
  | ps -> Alcotest.failf "expected one path, got %d" (List.length ps)

let test_summarize_constant_condition () =
  let p =
    Nfc.parse
      "NFAction(t) { if ((Packet.len - Packet.len) < 1) { Emit(EMIT); } else { Drop(); } }"
  in
  let s = Sym.summarize p in
  Alcotest.(check int) "only the live branch explored" 1 (List.length s.Sym.s_paths);
  match s.Sym.s_decided with
  | [ (0, _, true) ] -> ()
  | _ -> Alcotest.fail "the If must be decided true on every path"

let test_summarize_mod_zero () =
  let s = Sym.summarize (Nfc.parse "NFAction(t) { TempState.r = 1 % 0; Emit(EMIT); }") in
  (match s.Sym.s_paths with
  | [ p ] -> Alcotest.(check bool) "the path raises" true (p.Sym.p_exit = Sym.Exit_raise)
  | ps -> Alcotest.failf "expected one path, got %d" (List.length ps));
  Alcotest.(check (list string)) "a raising path hands control no event" []
    (Sym.exit_keys s)

(* ----- every shipped composition proves, with zero Unknown ----- *)

let test_shipped_specs_prove () =
  List.iter
    (fun name ->
      let vi = Check.Progen.spec_verify_input ~specs_dir ~name () in
      let r = Symcheck.check vi in
      Alcotest.(check string) (name ^ ": no findings") "" (pp_findings r.Symcheck.findings);
      Alcotest.(check (list string)) (name ^ ": all three passes proved")
        [ "match_removal"; "prefetch_dedup"; "specialize" ]
        r.Symcheck.proved;
      Alcotest.(check int) (name ^ ": zero Unknown fallbacks") 0 r.Symcheck.unknowns)
    Check.Progen.spec_names

let test_generated_programs_prove () =
  for seed = 300 to 311 do
    let r = Symcheck.check (Check.Progen.gen_verify_input ~seed) in
    Alcotest.(check string)
      (Printf.sprintf "gen seed=%d: no findings" seed)
      "" (pp_findings r.Symcheck.findings);
    Alcotest.(check int) (Printf.sprintf "gen seed=%d: no unknowns" seed) 0
      r.Symcheck.unknowns
  done

(* ----- mutation teeth ----- *)

(* Miscompile 1: the compiler "loses" a prefetch the dedup pass never
   stripped. Some state's fetch must become cold on a witnessed path. *)
let test_mutation_dropped_prefetch () =
  let vi = Check.Progen.spec_verify_input ~specs_dir ~name:"sfc4" () in
  let info = vi.Compiler.vi_program.Program.info in
  let refuted = ref None in
  Array.iteri
    (fun i (ci : Program.cs_info) ->
      if !refuted = None && ci.Program.prefetch <> [] then begin
        let saved = ci.Program.prefetch in
        ci.Program.prefetch <- [];
        let r = Symcheck.check vi in
        (match
           List.find_opt
             (fun f ->
               f.Report.severity = Report.Error && f.Report.rule = "verifyeq-prefetch")
             r.Symcheck.findings
         with
        | Some f -> refuted := Some (i, f)
        | None -> ());
        ci.Program.prefetch <- saved
      end)
    info;
  match !refuted with
  | None -> Alcotest.fail "no dropped prefetch was refuted"
  | Some (i, f) ->
      Alcotest.(check string) "refutation anchored at the mutated state"
        info.(i).Program.qname f.Report.qname;
      Alcotest.(check bool) "carries the cold-path witness" true (f.Report.witness <> []);
      Alcotest.(check bool) "explains the miss" true
        (contains ~sub:"not in flight" f.Report.detail)

(* Miscompile 2: a corrupted jump table — one live cell re-routed, one
   dead cell brought to life. Both directions must be caught. *)
let test_mutation_table_flip () =
  let vi = Check.Progen.spec_verify_input ~specs_dir ~name:"nat" () in
  let sp =
    match Specialize.get vi.Compiler.vi_program with
    | Some sp -> sp
    | None -> Alcotest.fail "verify_opts compiles with specialization on"
  in
  let table = Specialize.next_table sp in
  let n_classes = Specialize.n_classes sp in
  (* Builtin class columns (0..4) are always audited. *)
  let find pred =
    let r = ref None in
    Array.iteri
      (fun idx cell ->
        if !r = None && idx mod n_classes < 5 && pred cell then r := Some idx)
      table;
    match !r with Some idx -> idx | None -> Alcotest.fail "no such cell"
  in
  let expect_cell_finding label =
    let r = Symcheck.check vi in
    match
      List.find_opt (fun f -> contains ~sub:"jump table cell" f.Report.detail)
        (errors r.Symcheck.findings)
    with
    | Some f ->
        Alcotest.(check string) (label ^ ": rule") "verifyeq-specialize" f.Report.rule
    | None -> Alcotest.failf "%s: corrupted cell not refuted:\n%s" label
                (pp_findings r.Symcheck.findings)
  in
  (* Live cell re-routed to quarantine. *)
  let live = find (fun c -> c >= 0) in
  let saved = table.(live) in
  table.(live) <- -1;
  expect_cell_finding "stale cell";
  table.(live) <- saved;
  (* Dead cell brought to life: a transition the spec never declared. *)
  let dead = find (fun c -> c < 0) in
  table.(dead) <- 0;
  expect_cell_finding "phantom cell";
  table.(dead) <- -1;
  (* Restored table proves again. *)
  let r = Symcheck.check vi in
  Alcotest.(check string) "restored table is clean" "" (pp_findings r.Symcheck.findings)

(* Miscompile 3: the action emits an event the control logic never
   wired — the symbolic path summary must expose it with a witness
   naming the path condition and the emitted event. *)
let swap_source = "NFAction(swap) { Packet.seen = 1; Emit(EMIT); }"

let swap_spec =
  Spec.module_spec_of_string
    ("module: swap\n\
      category: StatefulNF\n\
      transitions:\n\
      - Start,packet->boom\n\
      - boom,DROP->End\n\
      fetching:\n\
     \  boom:\n\
     \  - header\n\
      states:\n\
     \  header: packet\n\
      nfc:\n\
     \  boom: " ^ swap_source ^ "\n")

let stub_binding =
  { Nfc.read_field = (fun _ _ _ _ -> 0); write_field = (fun _ _ _ _ _ -> ()) }

let swap_instance () =
  {
    Compiler.i_name = "b";
    i_spec = swap_spec;
    i_actions = [ ("boom", Nfc.compile ~binding:stub_binding swap_source) ];
    i_bindings = [ ("header", Prefetch.Packet_header 64) ];
    i_key_kind = None;
  }

let swap_nf =
  { Spec.n_name = "swapnf"; n_modules = [ ("b", "swap") ]; n_transitions = [] }

let test_mutation_emit_swap () =
  let vi =
    Compiler.verify_view ~opts:Check.Progen.verify_opts ~name:"swapnf"
      [ swap_instance () ] swap_nf
  in
  let r = Symcheck.check vi in
  match errors r.Symcheck.findings with
  | [ f ] ->
      Alcotest.(check string) "rule" "verifyeq-specialize" f.Report.rule;
      Alcotest.(check string) "names the control state" "b.boom" f.Report.qname;
      Alcotest.(check bool) "no transition for the emitted event" true
        (contains ~sub:{|emits "EMIT"|} f.Report.detail);
      (* The witness's last line is the symbolic path itself. *)
      (match List.rev f.Report.witness with
      | last :: _ ->
          Alcotest.(check bool) "path witness shows the diverging write + emit" true
            (contains ~sub:"Packet.seen = 1" last && contains ~sub:{|emit "EMIT"|} last)
      | [] -> Alcotest.fail "refutation must carry a witness")
  | fs -> Alcotest.failf "expected exactly one refutation:\n%s" (pp_findings fs)

(* Miscompile 4: a removed classifier whose key kind no survivor
   matches — its verdict was never reusable. *)
let test_mutation_key_kind_swap () =
  let vi = Check.Progen.spec_verify_input ~specs_dir ~name:"sfc4" () in
  let post = List.map fst vi.Compiler.vi_nf.Spec.n_modules in
  let removed =
    List.filter
      (fun n -> not (List.mem n post))
      (List.map fst vi.Compiler.vi_orig_nf.Spec.n_modules)
  in
  (match removed with
  | [] -> Alcotest.fail "sfc4 must exercise match removal"
  | _ -> ());
  let victim = List.hd removed in
  let vi' =
    {
      vi with
      Compiler.vi_orig_instances =
        List.map
          (fun i ->
            if i.Compiler.i_name = victim then
              { i with Compiler.i_key_kind = Some "verifyeq-test-kind" }
            else i)
          vi.Compiler.vi_orig_instances;
    }
  in
  let r = Symcheck.check vi' in
  match
    List.find_opt (fun f -> f.Report.rule = "verifyeq-match-removal")
      (errors r.Symcheck.findings)
  with
  | Some f ->
      Alcotest.(check string) "names the deleted classifier" victim f.Report.qname;
      Alcotest.(check bool) "explains the verdict is not reusable" true
        (contains ~sub:"not reusable" f.Report.detail)
  | None ->
      Alcotest.failf "reclassified key kind not refuted:\n%s"
        (pp_findings r.Symcheck.findings)

(* ----- the compiler's verify hook ----- *)

let test_verify_error_fails_compile () =
  let opts = { Check.Progen.verify_opts with Compiler.verify_passes = `Error } in
  match Compiler.compile ~opts ~name:"swapnf" [ swap_instance () ] swap_nf with
  | exception Compiler.Compile_error msg ->
      Alcotest.(check bool) "error names verifyeq" true (contains ~sub:"verifyeq" msg)
  | _ -> Alcotest.fail "verify_passes = `Error must fail a refuted compile"

let test_verify_warn_compiles () =
  let opts = { Check.Progen.verify_opts with Compiler.verify_passes = `Warn } in
  let p = Compiler.compile ~opts ~name:"swapnf" [ swap_instance () ] swap_nf in
  Alcotest.(check bool) "program still built" true (Program.n_states p > 0)

(* ----- Mod-by-zero semantics pinned across compilation modes ----- *)

let boom_source = "NFAction(boom) { TempState.r = 1 % 0; Emit(EMIT); }"

let boom_spec =
  Spec.module_spec_of_string
    ("module: boom\n\
      category: StatefulNF\n\
      transitions:\n\
      - Start,packet->boom\n\
      - boom,EMIT->End\n\
      fetching:\n\
     \  boom:\n\
     \  - header\n\
      states:\n\
     \  header: packet\n\
      nfc:\n\
     \  boom: " ^ boom_source ^ "\n")

let boom_instance () =
  {
    Compiler.i_name = "z";
    i_spec = boom_spec;
    i_actions = [ ("boom", Nfc.compile ~binding:stub_binding boom_source) ];
    i_bindings = [ ("header", Prefetch.Packet_header 64) ];
    i_key_kind = None;
  }

let boom_nf =
  { Spec.n_name = "boomnf"; n_modules = [ ("z", "boom") ]; n_transitions = [] }

let run_boom ~specialized =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let gen =
    Traffic.Flowgen.create ~seed:11 ~n_flows:16
      ~size_model:(Traffic.Flowgen.Fixed 128) ()
  in
  let pool = Netcore.Packet.Pool.create layout ~count:64 in
  let program = Compiler.compile ~name:"boomnf" [ boom_instance () ] boom_nf in
  if specialized then Specialize.install program else Specialize.remove program;
  let r = Rtc.run worker program (Workload.of_flowgen gen ~pool ~count:24) in
  ( r.Metrics.packets,
    r.Metrics.drops,
    r.Metrics.faulted,
    r.Metrics.faults,
    r.Metrics.degraded )

let test_mod_zero_containment_parity () =
  (* Every packet hits 1 % 0; the raise must be contained — not
     propagated — and identically so under the interpreter and the fused
     hot path: same quarantine count, same taxonomy, same degradation. *)
  let interp = run_boom ~specialized:false in
  let fused = run_boom ~specialized:true in
  Alcotest.(check bool) "interpreted ≡ specialized on faults" true (interp = fused);
  let _, _, faulted, faults, _ = interp in
  Alcotest.(check int) "every packet quarantined" 24 faulted;
  Alcotest.(check bool) "taxonomy blames the action raise" true
    (List.exists (fun (_, reason, n) -> reason = Fault.Action_raise && n > 0) faults)

let suite =
  [
    Alcotest.test_case "sym: simplifier" `Quick test_simplify;
    Alcotest.test_case "sym: interval decisions" `Quick test_decide_interval;
    Alcotest.test_case "sym: congruence decisions" `Quick test_decide_congruence;
    Alcotest.test_case "sym: branch summary" `Quick test_summarize_branches;
    Alcotest.test_case "sym: entry-value substitution" `Quick
      test_summarize_entry_substitution;
    Alcotest.test_case "sym: constant condition decided" `Quick
      test_summarize_constant_condition;
    Alcotest.test_case "sym: modulo-by-zero path" `Quick test_summarize_mod_zero;
    Alcotest.test_case "shipped specs prove, zero Unknown" `Quick
      test_shipped_specs_prove;
    Alcotest.test_case "generated programs prove" `Quick test_generated_programs_prove;
    Alcotest.test_case "mutation: dropped prefetch refuted" `Quick
      test_mutation_dropped_prefetch;
    Alcotest.test_case "mutation: jump-table flips refuted" `Quick
      test_mutation_table_flip;
    Alcotest.test_case "mutation: unwired emit refuted" `Quick test_mutation_emit_swap;
    Alcotest.test_case "mutation: reclassified key kind refuted" `Quick
      test_mutation_key_kind_swap;
    Alcotest.test_case "verify=Error fails compile" `Quick test_verify_error_fails_compile;
    Alcotest.test_case "verify=Warn still compiles" `Quick test_verify_warn_compiles;
    Alcotest.test_case "mod-by-zero containment parity" `Quick
      test_mod_zero_containment_parity;
  ]
