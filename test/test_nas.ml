(* NAS-lite codec and the AMF's bytes-level dispatch. *)

open Gunfu

let test_nas_roundtrip () =
  let buf = Bytes.make 64 '\000' in
  let t = { Netcore.Nas.msg_type = Netcore.Nas.mt_service_request; ue_id = 12345; payload_len = 77 } in
  Netcore.Nas.encode t buf ~off:10;
  let d = Netcore.Nas.decode buf ~off:10 in
  Alcotest.(check int) "msg type" Netcore.Nas.mt_service_request d.Netcore.Nas.msg_type;
  Alcotest.(check int) "ue id" 12345 d.Netcore.Nas.ue_id;
  Alcotest.(check int) "payload len" 77 d.Netcore.Nas.payload_len

let test_nas_rejects_garbage () =
  let buf = Bytes.make 4 '\xff' in
  (match Netcore.Nas.decode buf ~off:0 with
  | exception Netcore.Nas.Malformed _ -> ()
  | _ -> Alcotest.fail "wrong discriminator accepted");
  match Netcore.Nas.decode (Bytes.make 1 '\x7e') ~off:0 with
  | exception Netcore.Nas.Malformed _ -> ()
  | _ -> Alcotest.fail "truncated accepted"

let test_msg_type_mapping_bijective () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        ("roundtrip " ^ Traffic.Mgw.amf_msg_name m)
        true
        (Workload.msg_of_nas_type (Workload.nas_type_of_msg m) = Some m))
    Traffic.Mgw.all_amf_msgs;
  Alcotest.(check (option reject)) "unknown nas type" None
    (Option.map (fun _ -> ()) (Workload.msg_of_nas_type 0xEE))

let test_amf_packet_carries_nas () =
  let pkt = Workload.amf_packet ~ue:42 ~msg:Traffic.Mgw.Registration_request () in
  let off = pkt.Netcore.Packet.l4_off + Netcore.L4.tcp_header_bytes in
  let nas = Netcore.Nas.decode pkt.Netcore.Packet.buf ~off in
  Alcotest.(check int) "nas carries the UE id" 42 nas.Netcore.Nas.ue_id;
  Alcotest.(check int) "nas carries the msg type" Netcore.Nas.mt_registration_request
    nas.Netcore.Nas.msg_type

(* The dispatch action must take the message type from the BYTES: corrupt
   aux, keep the NAS PDU intact, and the AMF still routes correctly. *)
let test_dispatch_parses_bytes_not_aux () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let pool = Netcore.Packet.Pool.create layout ~count:8 in
  let amf = Nfs.Amf.create layout ~name:"amf" ~n_ues:4 () in
  Nfs.Amf.populate amf;
  let program = Nfs.Amf.program amf in
  let pkt = Workload.amf_packet ~ue:0 ~msg:Traffic.Mgw.Registration_request () in
  Netcore.Packet.Pool.assign pool pkt;
  (* aux lies: it says Security_mode_complete. *)
  let item =
    {
      Workload.packet = Some pkt;
      aux = Workload.amf_msg_code Traffic.Mgw.Security_mode_complete;
      flow_hint = 0;
    }
  in
  let _ = Rtc.run worker program (Workload.total_items [ item ]) in
  (* Parsed-from-bytes RegistrationRequest is valid at phase 0 -> no
     protocol error; the lying aux would have produced one. *)
  Alcotest.(check int) "routed by wire bytes, not aux" 0 amf.Nfs.Amf.protocol_errors;
  Alcotest.(check int) "registration FSM advanced" 1 amf.Nfs.Amf.progress.(0)

let suite =
  [
    Alcotest.test_case "nas roundtrip" `Quick test_nas_roundtrip;
    Alcotest.test_case "nas rejects garbage" `Quick test_nas_rejects_garbage;
    Alcotest.test_case "msg type mapping bijective" `Quick test_msg_type_mapping_bijective;
    Alcotest.test_case "amf packet carries nas" `Quick test_amf_packet_carries_nas;
    Alcotest.test_case "dispatch parses bytes" `Quick test_dispatch_parses_bytes_not_aux;
  ]
