(* Extension features: Maglev consistent hashing, the batched-prefetch RTC
   baseline, and the UPF uplink (decapsulation) path. *)

open Gunfu

(* ----- Maglev ----- *)

open Structures

let test_maglev_full_table () =
  let m = Maglev.build ~table_size:4099 ~n_backends:7 () in
  Alcotest.(check int) "table size" 4099 (Maglev.table_size m);
  for key = 0 to 999 do
    let b = Maglev.lookup m (Int64.of_int key) in
    Alcotest.(check bool) "every slot owned" true (b >= 0 && b < 7)
  done

let test_maglev_balance () =
  let m = Maglev.build ~table_size:65537 ~n_backends:16 () in
  let shares = Maglev.shares m in
  Array.iter
    (fun s ->
      (* Maglev guarantees near-perfect balance: each backend within a few
         percent of 1/N. *)
      Alcotest.(check bool) "share within 10% of fair" true
        (abs_float (s -. (1.0 /. 16.0)) < 0.1 /. 16.0))
    shares

let test_maglev_minimal_disruption () =
  let a = Maglev.build ~table_size:65537 ~n_backends:10 () in
  let b = Maglev.build ~table_size:65537 ~n_backends:9 () in
  let d = Maglev.disruption a b in
  (* Removing 1 of 10 backends must move ~10% of slots, not ~50% like a
     modulo hash would. *)
  Alcotest.(check bool) "disruption close to 1/N" true (d < 0.2)

let test_maglev_deterministic () =
  let a = Maglev.build ~table_size:4099 ~n_backends:5 () in
  let b = Maglev.build ~table_size:4099 ~n_backends:5 () in
  Alcotest.(check (float 0.0)) "identical rebuild" 0.0 (Maglev.disruption a b)

let test_maglev_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "invalid Maglev parameters accepted")
    [
      (fun () -> Maglev.build ~table_size:4099 ~n_backends:0 ());
      (fun () -> Maglev.build ~table_size:4100 ~n_backends:2 ());
      (fun () -> Maglev.build ~table_size:3 ~n_backends:5 ());
    ]

let qcheck_maglev_lookup_in_range =
  QCheck.Test.make ~name:"maglev lookup always names a backend" ~count:200
    QCheck.(pair (int_range 1 32) (map Int64.of_int int))
    (fun (n_backends, key) ->
      let m = Maglev.build ~table_size:4099 ~n_backends () in
      let b = Maglev.lookup m key in
      b >= 0 && b < n_backends)

(* ----- batched-prefetch RTC ----- *)

let test_batch_rtc_processes_all () =
  let s = Helpers.nat_setup () in
  let r = Batch_rtc.run s.Helpers.worker s.Helpers.program (Helpers.nat_source s ~count:500) in
  Alcotest.(check int) "all packets" 500 r.Metrics.packets;
  Alcotest.(check int) "no drops" 0 r.Metrics.drops

let test_batch_rtc_partial_batch () =
  let s = Helpers.nat_setup () in
  let r =
    Batch_rtc.run ~batch:32 s.Helpers.worker s.Helpers.program
      (Helpers.nat_source s ~count:37)
  in
  Alcotest.(check int) "non-multiple of batch size" 37 r.Metrics.packets

let test_batch_rtc_prefetches () =
  let s = Helpers.nat_setup ~n_flows:65536 () in
  let r =
    Batch_rtc.run s.Helpers.worker s.Helpers.program (Helpers.nat_source s ~count:2000)
  in
  Alcotest.(check bool) "batch prefetching issued" true
    (r.Metrics.mem.Memsim.Memstats.prefetch_issued > 0)

let test_batch_rtc_same_effects () =
  let run exec =
    let s = Helpers.nat_setup ~seed:11 () in
    let flow = Traffic.Flowgen.flow s.Helpers.gen 3 in
    let pkt = Netcore.Packet.make ~flow ~wire_len:128 () in
    Netcore.Packet.Pool.assign s.Helpers.pool pkt;
    let item = { Workload.packet = Some pkt; aux = 0; flow_hint = 3 } in
    let _ = exec s.Helpers.worker s.Helpers.program (Workload.total_items [ item ]) in
    Netcore.Packet.flow_of_headers pkt
  in
  let a = run (fun w p s -> Rtc.run w p s) in
  let b = run (fun w p s -> Batch_rtc.run w p s) in
  Alcotest.(check bool) "same NAT rewrite as plain RTC" true (Netcore.Flow.equal a b)

(* The hierarchy the paper claims (§II-C): batched prefetching beats plain
   RTC, but the interleaved model beats both because it also covers the
   control-flow-dependent accesses. *)
let test_execution_model_ordering () =
  let measure exec =
    let s = Helpers.nat_setup ~n_flows:65536 () in
    Metrics.mpps (exec s.Helpers.worker s.Helpers.program (Helpers.nat_source s ~count:20_000))
  in
  let rtc = measure (fun w p s -> Rtc.run w p s) in
  let batch = measure (fun w p s -> Batch_rtc.run w p s) in
  let il = measure (fun w p s -> Scheduler.run w p ~n_tasks:16 s) in
  Alcotest.(check bool) "batched prefetch beats plain RTC" true (batch > rtc);
  Alcotest.(check bool) "interleaving beats batched prefetch" true (il > batch)

(* ----- UPF uplink ----- *)

let uplink_env () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let mgw = Traffic.Mgw.create ~n_sessions:256 ~n_pdrs:4 () in
  let pool = Netcore.Packet.Pool.create layout ~count:64 in
  let upf =
    Nfs.Upf.create layout ~name:"upf" ~sessions:(Traffic.Mgw.sessions mgw) ~n_pdrs:4 ()
  in
  Nfs.Upf.populate upf;
  (worker, mgw, pool, upf, Nfs.Upf.uplink_program upf)

let ran_ip = Netcore.Ipv4.addr_of_string "10.200.1.1"
let upf_ip = Netcore.Ipv4.addr_of_string "10.200.0.1"

let test_uplink_decapsulates () =
  let worker, mgw, pool, upf, program = uplink_env () in
  for _ = 1 to 30 do
    let si, pkt = Traffic.Mgw.next_uplink mgw ~ran_ip ~upf_ip in
    Netcore.Packet.Pool.assign pool pkt;
    let encap_len = pkt.Netcore.Packet.wire_len in
    let r = Helpers.run_one worker program ~flow_hint:si pkt in
    Alcotest.(check int) "forwarded" 0 r.Metrics.drops;
    Alcotest.(check int) "tunnel stripped"
      (encap_len - Netcore.Gtpu.encap_overhead)
      pkt.Netcore.Packet.wire_len;
    (* Inner packet is the UE's own flow again. *)
    let inner = Netcore.Packet.flow_of_headers pkt in
    Alcotest.(check bool) "inner source is the UE" true
      (Int32.equal inner.Netcore.Flow.src_ip (Traffic.Mgw.session mgw si).Traffic.Mgw.ue_ip)
  done;
  Alcotest.(check int) "decap counter" 30 upf.Nfs.Upf.decapsulated

let test_uplink_unknown_teid_dropped () =
  let worker, _mgw, pool, _, program = uplink_env () in
  let flow =
    Netcore.Flow.make ~src_ip:5l ~dst_ip:6l ~src_port:1000 ~dst_port:2000
      ~proto:Netcore.Ipv4.proto_udp
  in
  let pkt = Netcore.Packet.make ~flow ~wire_len:128 () in
  Netcore.Packet.encapsulate_gtpu pkt ~outer_src:ran_ip ~outer_dst:upf_ip
    ~teid:0x7FFFFFFFl;
  Netcore.Packet.Pool.assign pool pkt;
  let r = Helpers.run_one worker program pkt in
  Alcotest.(check int) "unknown TEID dropped" 1 r.Metrics.drops

let test_uplink_interleaved () =
  let worker, mgw, pool, upf, program = uplink_env () in
  let source =
    Workload.limited 500 (fun () ->
        let si, pkt = Traffic.Mgw.next_uplink mgw ~ran_ip ~upf_ip in
        Netcore.Packet.Pool.assign pool pkt;
        { Workload.packet = Some pkt; aux = 0; flow_hint = si })
  in
  let r = Scheduler.run worker program ~n_tasks:16 source in
  Alcotest.(check int) "all uplink packets" 500 r.Metrics.packets;
  Alcotest.(check int) "all decapsulated" 500 upf.Nfs.Upf.decapsulated

let suite =
  [
    Alcotest.test_case "maglev full table" `Quick test_maglev_full_table;
    Alcotest.test_case "maglev balance" `Quick test_maglev_balance;
    Alcotest.test_case "maglev minimal disruption" `Quick test_maglev_minimal_disruption;
    Alcotest.test_case "maglev deterministic" `Quick test_maglev_deterministic;
    Alcotest.test_case "maglev validation" `Quick test_maglev_validation;
    Helpers.qcheck qcheck_maglev_lookup_in_range;
    Alcotest.test_case "batch-rtc processes all" `Quick test_batch_rtc_processes_all;
    Alcotest.test_case "batch-rtc partial batch" `Quick test_batch_rtc_partial_batch;
    Alcotest.test_case "batch-rtc prefetches" `Quick test_batch_rtc_prefetches;
    Alcotest.test_case "batch-rtc same effects" `Quick test_batch_rtc_same_effects;
    Alcotest.test_case "execution model ordering" `Slow test_execution_model_ordering;
    Alcotest.test_case "uplink decapsulates" `Quick test_uplink_decapsulates;
    Alcotest.test_case "uplink unknown teid" `Quick test_uplink_unknown_teid_dropped;
    Alcotest.test_case "uplink interleaved" `Quick test_uplink_interleaved;
  ]
