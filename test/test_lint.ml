(* The static analyzer (nflint): the shared dataflow fixpoint, NF-C
   effects summaries, the bad-spec fixtures (each must yield exactly its
   intended finding), cleanliness of every shipped spec, a constructed
   short-distance build, and the compiler's lint hook. *)

open Gunfu
open Analysis

let specs_dir = "../specs"
let () = Register.install ()

let significant fs =
  List.filter
    (fun f -> Report.severity_rank f.Report.severity >= Report.severity_rank Report.Warning)
    fs

let pp_findings fs = Fmt.str "%a" (Fmt.list Report.pp_finding) fs

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ----- dataflow ----- *)

(* a --l--> b --j--> d ; a --r--> c --j--> d : the classic join diamond. *)
let diamond () =
  let bld = Fsm.Builder.create () in
  let a = Fsm.Builder.add_state bld "a" in
  let b = Fsm.Builder.add_state bld "b" in
  let c = Fsm.Builder.add_state bld "c" in
  let d = Fsm.Builder.add_state bld "d" in
  Fsm.Builder.add_edge bld ~src:a ~event:"l" ~dst:b;
  Fsm.Builder.add_edge bld ~src:a ~event:"r" ~dst:c;
  Fsm.Builder.add_edge bld ~src:b ~event:"j" ~dst:d;
  Fsm.Builder.add_edge bld ~src:c ~event:"j" ~dst:d;
  (Fsm.Builder.build bld, a, b, c, d)

let run_diamond ~join ~init =
  let fsm, a, _, _, d = diamond () in
  let eq = String.equal in
  let r =
    Dataflow.forward fsm ~entry:a ~entry_out:[ "seed" ] ~init ~no_pred:[]
      ~join:(join ~equal:eq)
      ~equal:(Dataflow.Set_ops.set_equal ~equal:eq)
      ~transfer:(fun i f -> Dataflow.Set_ops.union ~equal:eq f [ Fsm.name fsm i ])
  in
  (r, d)

let test_dataflow_must () =
  (* Must-analysis: only facts on EVERY path into d survive the join —
     "b" and "c" are branch-local, "seed" flows through both. *)
  let r, d = run_diamond ~join:Dataflow.Set_ops.inter ~init:[ "seed"; "b"; "c"; "d" ] in
  Alcotest.(check bool) "ins(d) is exactly {seed}" true
    (Dataflow.Set_ops.set_equal ~equal:String.equal r.Dataflow.ins.(d) [ "seed" ]);
  Alcotest.(check bool) "outs(d) adds d's own fact" true
    (Dataflow.Set_ops.set_equal ~equal:String.equal r.Dataflow.outs.(d) [ "seed"; "d" ])

let test_dataflow_may () =
  (* May-analysis (join = union): both branch facts reach d. *)
  let r, d = run_diamond ~join:Dataflow.Set_ops.union ~init:[] in
  Alcotest.(check bool) "ins(d) is {seed,b,c}" true
    (Dataflow.Set_ops.set_equal ~equal:String.equal r.Dataflow.ins.(d) [ "seed"; "b"; "c" ])

let test_dataflow_reachability_and_witness () =
  let bld = Fsm.Builder.create () in
  let a = Fsm.Builder.add_state bld "a" in
  let b = Fsm.Builder.add_state bld "b" in
  let orphan = Fsm.Builder.add_state bld "orphan" in
  Fsm.Builder.add_edge bld ~src:a ~event:"x" ~dst:b;
  Fsm.Builder.add_edge bld ~src:orphan ~event:"x" ~dst:b;
  let fsm = Fsm.Builder.build bld in
  let reach = Dataflow.reachable fsm ~entry:a in
  Alcotest.(check bool) "b reachable" true reach.(b);
  Alcotest.(check bool) "orphan not reachable" false reach.(orphan);
  let co = Dataflow.coreachable fsm ~exit_:b in
  Alcotest.(check bool) "orphan co-reachable (it can reach b)" true co.(orphan);
  (match Dataflow.witness fsm ~entry:a ~target:b with
  | Some [ s0; s1 ] ->
      Alcotest.(check int) "witness starts at entry" a s0;
      Alcotest.(check int) "witness ends at target" b s1
  | other ->
      Alcotest.failf "expected 2-state witness, got %s"
        (match other with None -> "None" | Some p -> string_of_int (List.length p)))
  ;
  Alcotest.(check bool) "no witness into an orphan" true
    (Dataflow.witness fsm ~entry:a ~target:orphan = None)

(* ----- effects ----- *)

let eff src =
  match Effects.of_source src with
  | Ok e -> e
  | Error msg -> Alcotest.failf "unexpected NF-C error: %s" msg

let has_access e scope field write =
  List.exists
    (fun (a : Effects.access) ->
      a.Effects.a_scope = scope && a.Effects.a_field = field && a.Effects.a_write = write)
    e.Effects.accesses

let test_effects_reads_writes_emits () =
  let e = eff "NFAction(m) { Packet.src_ip = PerFlowState.ip; Emit(Event_Packet); }" in
  Alcotest.(check bool) "writes Packet.src_ip" true (has_access e Nfc.Packet "src_ip" true);
  Alcotest.(check bool) "reads PerFlowState.ip" true (has_access e Nfc.Per_flow "ip" false);
  Alcotest.(check (list string)) "Event_Packet normalizes to its key" [ "packet" ]
    e.Effects.emits;
  Alcotest.(check bool) "every path emits" false e.Effects.falls_through;
  Alcotest.(check bool) "touches Packet" true (Effects.touches e Nfc.Packet);
  Alcotest.(check bool) "never writes PerFlowState" false
    (Effects.touches e ~write:true Nfc.Per_flow)

let test_effects_if_joins_branches () =
  (* Both branches are visited (may-info: both emits) while the temp
     must-set takes the meet: t is written on every path, u on one. *)
  let e =
    eff
      "NFAction(m) { if (Packet.p == 1) { TempState.t = 1; TempState.u = 1; Emit(a); } \
       else { TempState.t = 2; Emit(b); } }"
  in
  Alcotest.(check (list string)) "emits from both branches" [ "a"; "b" ] e.Effects.emits;
  Alcotest.(check bool) "t definitely written" true (List.mem "t" e.Effects.temp_written);
  Alcotest.(check bool) "u only conditionally written" false
    (List.mem "u" e.Effects.temp_written)

let test_effects_temp_exposure () =
  (* v is read before any local write: its value leaks in from outside.
     u is written first, so the later read is covered. *)
  let e = eff "NFAction(m) { TempState.u = TempState.v + 1; Packet.o = TempState.u; Emit(a); }" in
  Alcotest.(check (list string)) "v exposed" [ "v" ] e.Effects.temp_exposed;
  Alcotest.(check (list string)) "u definitely written" [ "u" ] e.Effects.temp_written;
  (* A read under an if that only sometimes wrote first is exposed too. *)
  let e2 =
    eff "NFAction(m) { if (Packet.p == 1) { TempState.t = 1; } Packet.o = TempState.t; Emit(a); }"
  in
  Alcotest.(check (list string)) "conditionally-written read exposed" [ "t" ]
    e2.Effects.temp_exposed

let test_effects_drop_and_fall_through () =
  let e = eff "NFAction(m) { if (Packet.p == 1) { Drop(); } Packet.a = 1; }" in
  Alcotest.(check (list string)) "Drop maps to its event key" [ "DROP" ] e.Effects.emits;
  Alcotest.(check bool) "the no-drop path falls through" true e.Effects.falls_through

(* ----- the bad fixtures: each yields exactly its intended finding ----- *)

let load_module path = Spec.module_spec_of_string (Nfs.Catalog.read_file path)

let expect_single_finding file rule severity qname () =
  let fs = significant (Lints.of_module (load_module (Filename.concat specs_dir file))) in
  match fs with
  | [ f ] ->
      Alcotest.(check string) (file ^ ": rule") rule f.Report.rule;
      Alcotest.(check string) (file ^ ": severity") (Report.severity_label severity)
        (Report.severity_label f.Report.severity);
      Alcotest.(check string) (file ^ ": offending state") qname f.Report.qname
  | fs ->
      Alcotest.failf "%s: expected exactly one finding, got %d:\n%s" file (List.length fs)
        (pp_findings fs)

let test_cold_access_witness () =
  (* The cold-access finding must carry the FSM path that reaches the
     demand miss. *)
  let fs = Lints.of_module (load_module (specs_dir ^ "/bad/cold_access.yaml")) in
  match significant fs with
  | [ f ] ->
      Alcotest.(check (list string)) "entry-to-offender path" [ "Start"; "rewrite" ]
        f.Report.witness
  | fs -> Alcotest.failf "expected one finding:\n%s" (pp_findings fs)

(* ----- all shipped specs are clean ----- *)

let is_composition src =
  List.exists
    (fun l -> String.length l >= 3 && String.sub l 0 3 = "nf:")
    (String.split_on_char '\n' src)

let test_shipped_modules_clean () =
  let files =
    Sys.readdir specs_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".yaml")
    |> List.sort compare
  in
  Alcotest.(check bool) "found the shipped specs" true (List.length files >= 10);
  List.iter
    (fun file ->
      let src = Nfs.Catalog.read_file (Filename.concat specs_dir file) in
      if not (is_composition src) then
        let fs = Lints.of_module (Spec.module_spec_of_string src) in
        Alcotest.(check string) (file ^ " lints clean") "" (pp_findings fs))
    files

let test_shipped_builds_clean () =
  List.iter
    (fun name ->
      let li = Check.Progen.spec_lint_input ~specs_dir ~name () in
      let fs = Lints.of_build li in
      Alcotest.(check string) (name ^ " build lints clean") "" (pp_findings fs))
    Check.Progen.spec_names

(* ----- a constructed build with a short-distance prefetch ----- *)

let toy_sd_spec =
  Spec.module_spec_of_string
    "module: toy_sd\n\
     category: StatefulNF\n\
     transitions:\n\
     - Start,packet->warm\n\
     - warm,go->use\n\
     - use,packet->End\n\
     fetching:\n\
    \  warm:\n\
    \  - header\n\
    \  use:\n\
    \  - mapping\n\
     states:\n\
    \  header: packet\n\
    \  mapping: per_flow\n\
     nfc:\n\
    \  warm: NFAction(warm) { Packet.ttl = Packet.ttl - 1; Emit(go); }\n\
    \  use: NFAction(use) { Packet.src = PerFlowState.ip; Emit(Event_Packet); }\n"

let dummy_action name = Action.make ~name (fun _ _ -> Event.Packet_arrival)

let toy_sd_instance () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let arena =
    Structures.State_arena.create layout ~label:"toy_pf" ~entry_bytes:64 ~count:16 ()
  in
  {
    Compiler.i_name = "t";
    i_spec = toy_sd_spec;
    i_actions = [ ("warm", dummy_action "warm"); ("use", dummy_action "use") ];
    i_bindings =
      [ ("header", Prefetch.Packet_header 64); ("mapping", Prefetch.Per_flow (arena, [])) ];
    i_key_kind = None;
  }

let toy_nf = { Spec.n_name = "toy"; n_modules = [ ("t", "toy_sd") ]; n_transitions = [] }

let test_short_distance_flagged () =
  (* The per-flow prefetch rides the transition into "use" — the very
     state whose action reads it — while "warm" could host it (no kill,
     no competing fetch of the class). The header prefetch on "warm" is
     NOT flagged: its only predecessor is the entry pseudo-state. *)
  let li = Compiler.lint_view ~name:"toy" [ toy_sd_instance () ] toy_nf in
  match Lints.of_build li with
  | [ f ] ->
      Alcotest.(check string) "rule" "short-distance" f.Report.rule;
      Alcotest.(check string) "severity" "info" (Report.severity_label f.Report.severity);
      Alcotest.(check string) "anchored at the consuming state" "t.use" f.Report.qname;
      Alcotest.(check bool) "detail names the hoist host" true
        (contains ~sub:"t.warm" f.Report.detail)
  | fs -> Alcotest.failf "expected exactly the short-distance note:\n%s" (pp_findings fs)

(* ----- the compiler's lint hook ----- *)

let cold_instance () =
  (* The cold_access fixture as a real instance: the action reads
     per-flow state but only the header is ever fetched. *)
  {
    Compiler.i_name = "c";
    i_spec = load_module (specs_dir ^ "/bad/cold_access.yaml");
    i_actions = [ ("rewrite", dummy_action "rewrite") ];
    i_bindings = [ ("header", Prefetch.Packet_header 64) ];
    i_key_kind = None;
  }

let cold_nf = { Spec.n_name = "coldnf"; n_modules = [ ("c", "bad_cold") ]; n_transitions = [] }

let test_lint_error_fails_compilation () =
  let opts = { Compiler.default_opts with Compiler.lint = `Error } in
  match Compiler.compile ~opts ~name:"coldnf" [ cold_instance () ] cold_nf with
  | exception Compiler.Compile_error msg ->
      Alcotest.(check bool) "error names the analyzer" true
        (contains ~sub:"nflint" msg)
  | _ -> Alcotest.fail "lint = `Error must fail compilation on a cold access"

let test_lint_warn_compiles () =
  let opts = { Compiler.default_opts with Compiler.lint = `Warn } in
  let p = Compiler.compile ~opts ~name:"coldnf" [ cold_instance () ] cold_nf in
  Alcotest.(check bool) "program still built" true (Program.n_states p > 0)

let test_lint_clean_program_compiles_strictly () =
  let opts = { Compiler.default_opts with Compiler.lint = `Error } in
  let p = Compiler.compile ~opts ~name:"toy" [ toy_sd_instance () ] toy_nf in
  (* Info-severity findings (the short-distance note) never fail. *)
  Alcotest.(check bool) "clean program compiles under `Error" true (Program.n_states p > 0)

let test_match_removal_missing_instance () =
  let nf = { Spec.n_name = "ghostnf"; n_modules = [ ("ghost", "m") ]; n_transitions = [] } in
  match Compiler.remove_redundant_matching [] nf with
  | exception Compiler.Compile_error msg ->
      Alcotest.(check bool) "names the missing instance" true
        (contains ~sub:"ghost" msg)
  | _ -> Alcotest.fail "match removal over a missing instance must fail"

(* ----- report rendering ----- *)

let sample_finding =
  {
    Report.rule = "cold-access";
    severity = Report.Error;
    subject = "m";
    qname = "s";
    detail = "a \"quoted\"\nmulti-line detail";
    witness = [ "Start"; "s" ];
  }

let test_report_json_escapes () =
  let json = Report.to_json [ sample_finding ] in
  Alcotest.(check bool) "escapes quotes" true
    (contains ~sub:{|\"quoted\"|} json);
  Alcotest.(check bool) "escapes newlines" true (contains ~sub:{|\n|} json);
  Alcotest.(check bool) "carries the witness" true
    (contains ~sub:{|"witness":["Start","s"]|} json);
  Alcotest.(check string) "empty list renders as empty array" "[]" (Report.to_json [])

let test_report_sort_and_worst () =
  let mk rule severity = { sample_finding with Report.rule; severity } in
  let fs = [ mk "b" Report.Info; mk "a" Report.Error; mk "c" Report.Warning ] in
  Alcotest.(check (list string)) "severity-descending order" [ "a"; "c"; "b" ]
    (List.map (fun f -> f.Report.rule) (Report.sort fs));
  (match Report.worst fs with
  | Some Report.Error -> ()
  | _ -> Alcotest.fail "worst must be Error");
  Alcotest.(check bool) "worst of nothing" true (Report.worst [] = None)

let suite =
  [
    Alcotest.test_case "dataflow: must join" `Quick test_dataflow_must;
    Alcotest.test_case "dataflow: may join" `Quick test_dataflow_may;
    Alcotest.test_case "dataflow: reachability + witness" `Quick
      test_dataflow_reachability_and_witness;
    Alcotest.test_case "effects: reads/writes/emits" `Quick test_effects_reads_writes_emits;
    Alcotest.test_case "effects: if joins branches" `Quick test_effects_if_joins_branches;
    Alcotest.test_case "effects: temp exposure" `Quick test_effects_temp_exposure;
    Alcotest.test_case "effects: drop + fall-through" `Quick
      test_effects_drop_and_fall_through;
    Alcotest.test_case "fixture: cold access" `Quick
      (expect_single_finding "bad/cold_access.yaml" "cold-access" Report.Error "rewrite");
    Alcotest.test_case "fixture: interleaving conflict" `Quick
      (expect_single_finding "bad/control_race.yaml" "interleaving-conflict" Report.Warning
         "bump_a");
    Alcotest.test_case "fixture: temp escape" `Quick
      (expect_single_finding "bad/temp_escape.yaml" "temp-escape" Report.Error "use");
    Alcotest.test_case "fixture: unreachable state" `Quick
      (expect_single_finding "bad/unreachable.yaml" "unreachable-state" Report.Warning
         "orphan");
    Alcotest.test_case "fixture: constant condition" `Quick
      (expect_single_finding "bad/constant_condition.yaml" "constant-condition"
         Report.Warning "decide");
    Alcotest.test_case "fixture: cold access carries witness" `Quick test_cold_access_witness;
    Alcotest.test_case "shipped module specs clean" `Quick test_shipped_modules_clean;
    Alcotest.test_case "shipped builds clean" `Quick test_shipped_builds_clean;
    Alcotest.test_case "short-distance prefetch flagged" `Quick test_short_distance_flagged;
    Alcotest.test_case "lint=Error fails compile" `Quick test_lint_error_fails_compilation;
    Alcotest.test_case "lint=Warn still compiles" `Quick test_lint_warn_compiles;
    Alcotest.test_case "clean program compiles strictly" `Quick
      test_lint_clean_program_compiles_strictly;
    Alcotest.test_case "match removal: missing instance" `Quick
      test_match_removal_missing_instance;
    Alcotest.test_case "report: json escaping" `Quick test_report_json_escapes;
    Alcotest.test_case "report: sort + worst" `Quick test_report_sort_and_worst;
  ]
