(* The standalone specification files under specs/ (the artifacts
   architects hand to the director, Fig 4): every file must parse,
   validate, and agree with the corresponding built-in spec. *)

open Gunfu

let specs_dir = "../specs"

let read path =
  let ic = open_in (Filename.concat specs_dir path) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let module_files =
  [
    ("flow_classifier.yaml", Nfs.Classifier.spec);
    ("flow_mapper.yaml", Nfs.Nat.mapper_spec);
    ("nat_learner.yaml", Nfs.Nat.learner_spec);
    ("lb_forwarder.yaml", Nfs.Lb.spec);
    ("fw_filter.yaml", Nfs.Firewall.spec);
    ("nm_counter.yaml", Nfs.Monitor.spec);
    ("pdr_matcher.yaml", Nfs.Upf.pdr_spec);
    ("upf_encap.yaml", Nfs.Upf.encap_spec);
    ("upf_decap.yaml", Nfs.Upf.decap_spec);
  ]

let test_module_files_parse_and_validate () =
  List.iter
    (fun (file, _) ->
      let m = Spec.module_spec_of_string (read file) in
      Spec.validate_module m)
    module_files

let test_module_files_match_builtins () =
  List.iter
    (fun (file, builtin) ->
      let on_disk = Spec.module_spec_of_string (read file) in
      let built_in = Lazy.force builtin in
      Alcotest.(check string) (file ^ ": name") built_in.Spec.m_name on_disk.Spec.m_name;
      Alcotest.(check bool) (file ^ ": transitions") true
        (on_disk.Spec.m_transitions = built_in.Spec.m_transitions);
      Alcotest.(check bool) (file ^ ": fetching") true
        (on_disk.Spec.m_fetching = built_in.Spec.m_fetching);
      Alcotest.(check bool) (file ^ ": states") true
        (on_disk.Spec.m_states = built_in.Spec.m_states);
      Alcotest.(check bool) (file ^ ": nfc bodies") true
        (on_disk.Spec.m_nfc = built_in.Spec.m_nfc))
    module_files

let test_nf_files_parse_and_validate () =
  let known = List.map (fun (_, b) -> (Lazy.force b).Spec.m_name) module_files in
  List.iter
    (fun file ->
      let nf = Spec.nf_spec_of_string (read file) in
      Spec.validate_nf nf ~known_modules:known)
    [ "nat.yaml"; "upf_downlink.yaml"; "sfc4.yaml" ]

let test_sfc4_file_matches_builder () =
  (* The on-disk sfc4 composition must produce the same module wiring as
     the Sfc builder. *)
  let on_disk = Spec.nf_spec_of_string (read "sfc4.yaml") in
  let layout = Memsim.Layout.create () in
  let sfc = Nfs.Sfc.create layout ~length:4 ~packed:false ~n_flows:16 () in
  let built, _ = Nfs.Nf_unit.chain ~name:"sfc4" (Nfs.Sfc.units sfc) in
  Alcotest.(check (list (pair string string))) "same instances" built.Spec.n_modules
    on_disk.Spec.n_modules;
  let norm t = List.sort compare (List.map (fun tr -> (tr.Spec.src, tr.Spec.event, tr.Spec.dst)) t) in
  Alcotest.(check (list (triple string string string))) "same wiring"
    (norm built.Spec.n_transitions) (norm on_disk.Spec.n_transitions)

let suite =
  [
    Alcotest.test_case "module files parse+validate" `Quick test_module_files_parse_and_validate;
    Alcotest.test_case "module files match builtins" `Quick test_module_files_match_builtins;
    Alcotest.test_case "nf files parse+validate" `Quick test_nf_files_parse_and_validate;
    Alcotest.test_case "sfc4 file matches builder" `Quick test_sfc4_file_matches_builder;
  ]
