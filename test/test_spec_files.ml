(* The standalone specification files under specs/ (the artifacts
   architects hand to the director, Fig 4): every file must parse,
   validate, and agree with the corresponding built-in spec. *)

open Gunfu

let specs_dir = "../specs"

let read path =
  let ic = open_in (Filename.concat specs_dir path) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let module_files =
  [
    ("flow_classifier.yaml", Nfs.Classifier.spec);
    ("flow_mapper.yaml", Nfs.Nat.mapper_spec);
    ("nat_learner.yaml", Nfs.Nat.learner_spec);
    ("lb_forwarder.yaml", Nfs.Lb.spec);
    ("fw_filter.yaml", Nfs.Firewall.spec);
    ("nm_counter.yaml", Nfs.Monitor.spec);
    ("pdr_matcher.yaml", Nfs.Upf.pdr_spec);
    ("upf_encap.yaml", Nfs.Upf.encap_spec);
    ("upf_decap.yaml", Nfs.Upf.decap_spec);
  ]

let test_module_files_parse_and_validate () =
  List.iter
    (fun (file, _) ->
      let m = Spec.module_spec_of_string (read file) in
      Spec.validate_module m)
    module_files

let test_module_files_match_builtins () =
  List.iter
    (fun (file, builtin) ->
      let on_disk = Spec.module_spec_of_string (read file) in
      let built_in = Lazy.force builtin in
      Alcotest.(check string) (file ^ ": name") built_in.Spec.m_name on_disk.Spec.m_name;
      Alcotest.(check bool) (file ^ ": transitions") true
        (on_disk.Spec.m_transitions = built_in.Spec.m_transitions);
      Alcotest.(check bool) (file ^ ": fetching") true
        (on_disk.Spec.m_fetching = built_in.Spec.m_fetching);
      Alcotest.(check bool) (file ^ ": states") true
        (on_disk.Spec.m_states = built_in.Spec.m_states);
      Alcotest.(check bool) (file ^ ": nfc bodies") true
        (on_disk.Spec.m_nfc = built_in.Spec.m_nfc))
    module_files

let test_nf_files_parse_and_validate () =
  let known = List.map (fun (_, b) -> (Lazy.force b).Spec.m_name) module_files in
  List.iter
    (fun file ->
      let nf = Spec.nf_spec_of_string (read file) in
      Spec.validate_nf nf ~known_modules:known)
    [ "nat.yaml"; "upf_downlink.yaml"; "sfc4.yaml" ]

let test_sfc4_file_matches_builder () =
  (* The on-disk sfc4 composition must produce the same module wiring as
     the Sfc builder. *)
  let on_disk = Spec.nf_spec_of_string (read "sfc4.yaml") in
  let layout = Memsim.Layout.create () in
  let sfc = Nfs.Sfc.create layout ~length:4 ~packed:false ~n_flows:16 () in
  let built, _ = Nfs.Nf_unit.chain ~name:"sfc4" (Nfs.Sfc.units sfc) in
  Alcotest.(check (list (pair string string))) "same instances" built.Spec.n_modules
    on_disk.Spec.n_modules;
  let norm t = List.sort compare (List.map (fun tr -> (tr.Spec.src, tr.Spec.event, tr.Spec.dst)) t) in
  Alcotest.(check (list (triple string string string))) "same wiring"
    (norm built.Spec.n_transitions) (norm on_disk.Spec.n_transitions)

(* --- Malformed-input pins -------------------------------------------------
   Every rejection path in the Yaml_lite -> Spec -> Nfc pipeline must
   surface as the domain exception (Spec_error / Nfc_error) with a
   message naming the problem — never a bare Failure / Invalid_argument
   / Not_found escaping an internal helper. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let expect_spec_error label needle f =
  match f () with
  | _ -> Alcotest.failf "%s: malformed input accepted" label
  | exception Spec.Spec_error m ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S mentions %S" label m needle)
        true (contains m needle)
  | exception e ->
      Alcotest.failf "%s: bare %s escaped (want Spec_error)" label
        (Printexc.to_string e)

let expect_nfc_error label needle f =
  match f () with
  | _ -> Alcotest.failf "%s: malformed input accepted" label
  | exception Nfc.Nfc_error m ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S mentions %S" label m needle)
        true (contains m needle)
  | exception e ->
      Alcotest.failf "%s: bare %s escaped (want Nfc_error)" label
        (Printexc.to_string e)

let test_malformed_module_inputs () =
  List.iter
    (fun (label, src, needle) ->
      expect_spec_error label needle (fun () -> Spec.module_spec_of_string src))
    [
      ("empty document", "", "missing scalar field");
      ("tab indentation", "\tmodule: x", "tab characters");
      ("empty key", ": x", "empty key");
      ("list item without key", "- a\n- b", "missing scalar field");
      ("line without colon", "module x", "expected 'key:'");
      ( "transitions as scalar",
        "module: x\ncategory: c\ntransitions: 5",
        "expected a list of transitions" );
      ( "transition missing arrow",
        "module: x\ncategory: c\ntransitions:\n- Start\n",
        "malformed transition" );
      ( "transition empty destination",
        "module: x\ncategory: c\ntransitions:\n- a,b->\n",
        "malformed transition" );
      ( "fetching as list",
        "module: x\ncategory: c\ntransitions:\n- Start,p->End\nfetching:\n- a",
        "fetching must be a map" );
      ( "states as list",
        "module: x\ncategory: c\ntransitions:\n- Start,p->End\nstates:\n- a",
        "states must be a map" );
      ( "nfc as list",
        "module: x\ncategory: c\ntransitions:\n- Start,p->End\nnfc:\n- a",
        "nfc must be a map" );
      ( "outdent past the document root",
        "  a: 1\nb: 2",
        "unexpected trailing content" );
    ];
  expect_spec_error "nf spec: empty document" "missing 'nf' field" (fun () ->
      Spec.nf_spec_of_string "");
  expect_spec_error "nf spec: modules as scalar" "missing modules map" (fun () ->
      Spec.nf_spec_of_string "nf: x\nmodules: 5");
  (* validate_module: structural errors on syntactically fine specs. *)
  expect_spec_error "validate: no Start transition" "no transition from Start"
    (fun () ->
      Spec.validate_module
        (Spec.module_spec_of_string "module: x\ncategory: c\ntransitions:\n- a,p->End"));
  expect_spec_error "validate: non-deterministic" "non-deterministic" (fun () ->
      Spec.validate_module
        (Spec.module_spec_of_string
           "module: x\ncategory: c\ntransitions:\n- Start,p->a\n- Start,p->b\n\
            - a,q->End\n- b,q->End"));
  (* An unparseable NFC body parses as a scalar but is rejected — as a
     Spec_error naming the state, not a bare Nfc_error — at validation. *)
  expect_spec_error "validate: invalid nfc body" "nfc.work" (fun () ->
      Spec.validate_module
        (Spec.module_spec_of_string
           "module: x\ncategory: c\ntransitions:\n- Start,p->work\n\
            - work,p->End\nnfc:\n  work: garbage !!"))

let test_duplicate_keys_rejected () =
  (* Silent first-wins on a duplicate key used to drop the second value
     without a word; now the parser rejects it with the line number. *)
  expect_spec_error "duplicate top-level key" "duplicate key \"module\"" (fun () ->
      Spec.module_spec_of_string
        "module: x\nmodule: y\ncategory: c\ntransitions:\n- Start,p->End");
  expect_spec_error "duplicate nested key" "duplicate key \"work\"" (fun () ->
      Spec.module_spec_of_string
        "module: x\ncategory: c\ntransitions:\n- Start,p->work\n- work,p->End\n\
         nfc:\n  work: NFAction(a) { Drop(); }\n  work: NFAction(b) { Drop(); }");
  (* Distinct keys at different nesting levels are not duplicates. *)
  let m =
    Spec.module_spec_of_string
      "module: x\ncategory: c\ntransitions:\n- Start,p->End\nstates:\n  x: packet"
  in
  Alcotest.(check string) "same name at two levels is fine" "x" m.Spec.m_name

let test_crlf_line_endings_accepted () =
  (* Windows-edited spec files: the \r must be stripped, not folded into
     field values. *)
  let m =
    Spec.module_spec_of_string
      "module: x\r\ncategory: c\r\ntransitions:\r\n- Start,p->End\r\n"
  in
  Alcotest.(check string) "name clean" "x" m.Spec.m_name;
  Alcotest.(check string) "category clean" "c" m.Spec.m_category;
  match m.Spec.m_transitions with
  | [ { Spec.src; event; dst } ] ->
      Alcotest.(check (list string)) "transition fields clean"
        [ "Start"; "p"; "End" ] [ src; event; dst ]
  | l -> Alcotest.failf "expected 1 transition, got %d" (List.length l)

let test_malformed_nfc_inputs () =
  List.iter
    (fun (label, src, needle) ->
      expect_nfc_error label needle (fun () -> ignore (Nfc.parse src)))
    [
      ("empty program", "", "must start with NFAction");
      ("missing action name", "NFAction() {}", "expected an identifier");
      ("numeric action name", "NFAction(5) {}", "expected an identifier");
      ("unterminated block", "NFAction(a) { Drop();", "unterminated block");
      ("trailing brace", "NFAction(a) { } }", "trailing tokens");
      ("unknown state scope", "NFAction(a) { Foo.x = 1; }", "unknown state keyword");
      ("missing semicolon", "NFAction(a) { Packet.x = 1 }", "expected \";\"");
      ( "oversized int literal",
        "NFAction(a) { Packet.x = 99999999999999999999; }",
        "integer literal" );
      ("stray character", "NFAction(a) { Packet.x = 1 @ 2; }", "lexical error");
      ("if without parens", "NFAction(a) { if 1 { } }", "expected \"(\"");
      ( "else-if is not in the grammar",
        "NFAction(a) { if (1) { } else if (2) { } }",
        "expected \"{\"" );
    ]

let test_bad_fixtures_still_parse () =
  (* specs/bad/ holds nflint fixtures: semantically wrong, syntactically
     fine. The parser hardening above must not start rejecting them. *)
  List.iter
    (fun file ->
      let m = Spec.module_spec_of_string (read (Filename.concat "bad" file)) in
      Alcotest.(check bool) (file ^ ": has transitions") true
        (m.Spec.m_transitions <> []))
    [ "cold_access.yaml"; "control_race.yaml"; "temp_escape.yaml"; "unreachable.yaml" ]

let suite =
  [
    Alcotest.test_case "module files parse+validate" `Quick test_module_files_parse_and_validate;
    Alcotest.test_case "module files match builtins" `Quick test_module_files_match_builtins;
    Alcotest.test_case "nf files parse+validate" `Quick test_nf_files_parse_and_validate;
    Alcotest.test_case "sfc4 file matches builder" `Quick test_sfc4_file_matches_builder;
    Alcotest.test_case "malformed module/nf inputs rejected" `Quick
      test_malformed_module_inputs;
    Alcotest.test_case "duplicate yaml keys rejected" `Quick
      test_duplicate_keys_rejected;
    Alcotest.test_case "crlf line endings accepted" `Quick
      test_crlf_line_endings_accepted;
    Alcotest.test_case "malformed nfc inputs rejected" `Quick
      test_malformed_nfc_inputs;
    Alcotest.test_case "bad/ lint fixtures still parse" `Quick
      test_bad_fixtures_still_parse;
  ]
