(* The compile-and-specialize tier: the fused hot path (dense FSM dispatch,
   fused action closures, zero-alloc packet arena) must be observationally
   byte-identical to the interpreter.

   Three layers of lockdown:
   - differential: every shipped composition and a 50+ generated-program
     sweep run 15-way (interpreted RTC reference vs all 14 executors
     specialized) through the oracle's full diff — inputs, counters,
     per-flow output streams, fault taxonomy, final state digests;
   - structural: the dense jump table agrees with [Program.step] on every
     (state, event) pair, including undefined transitions and their exact
     error text (QCheck over random programs, exhaustive over specs);
   - arena: recycling is physically in-place (the ring never grows) and
     resets to the exact state a fresh construction would produce, so
     arena-fed runs equal fresh-allocation runs field for field. *)

open Gunfu
open Check

let specs_dir = "../specs"

(* 13 seeds x 4 profiles = 52 generated programs. *)
let sweep_seeds = 13
let sweep_packets = 64

(* Interpreted reference vs every executor (reference included) under the
   specialized hot path. *)
let exercise (case : Oracle.case) =
  let fresh () = case.Oracle.c_build ~packets:case.Oracle.c_packets in
  let ref_obs = Oracle.observe Oracle.reference (fresh ()) in
  List.iter
    (fun exec ->
      let obs = Oracle.observe ~specialize:true exec (fresh ()) in
      match Oracle.diff_observations ~reference:ref_obs obs with
      | None -> ()
      | Some detail ->
          Alcotest.failf "%s: %s diverges from interpreted rtc: %s (replay: %s)"
            case.Oracle.c_name obs.Oracle.o_label detail
            (case.Oracle.c_repro ~packets:case.Oracle.c_packets))
    (Oracle.reference :: Oracle.executors)

let test_sweep profile () =
  for i = 0 to sweep_seeds - 1 do
    exercise (Progen.case ~seed:(100 + i) ~profile ~packets:sweep_packets)
  done

let test_spec_compositions () =
  let cases = Progen.spec_cases ~specs_dir ~seed:5 ~packets:96 () in
  Alcotest.(check int) "all shipped compositions covered"
    (List.length Progen.spec_names) (List.length cases);
  List.iter exercise cases

(* The observe axis itself: +spec labelling, payload installation, and —
   crucially — payload stripping, so a shared program instance cannot leak
   the specialized path into an interpreted baseline. *)
let test_observe_axis () =
  let case = Progen.case ~seed:9 ~profile:"uniform" ~packets:32 in
  let inst = case.Oracle.c_build ~packets:32 in
  let obs = Oracle.observe ~specialize:true Oracle.reference inst in
  Alcotest.(check string) "specialized label" "rtc+spec" obs.Oracle.o_label;
  Alcotest.(check bool) "payload installed" true
    (Specialize.installed inst.Oracle.program);
  let inst2 = case.Oracle.c_build ~packets:32 in
  Specialize.install inst2.Oracle.program;
  let obs2 = Oracle.observe Oracle.reference inst2 in
  Alcotest.(check string) "interpreted label" "rtc" obs2.Oracle.o_label;
  Alcotest.(check bool) "payload stripped for the interpreted run" false
    (Specialize.installed inst2.Oracle.program);
  Alcotest.(check (option string)) "specialized ≡ interpreted" None
    (Oracle.diff_observations ~reference:obs2 obs)

(* ----- dense dispatch vs the interpreter ----- *)

let program_of_case (case : Oracle.case) =
  (case.Oracle.c_build ~packets:4).Oracle.program

(* Builtins, every user key on an FSM edge (both the interned string and a
   physically distinct copy, to hit the memo and the hashtable paths), a
   key no edge mentions, and a quarantine marker. *)
let event_universe (p : Program.t) =
  let copy s = String.sub (s ^ "!") 0 (String.length s) in
  let user_keys =
    List.sort_uniq compare
      (List.filter_map
         (fun (_, key, _) ->
           match Event.of_key key with Event.User s -> Some s | _ -> None)
         (Fsm.edges p.Program.fsm))
  in
  [
    Event.Packet_arrival; Event.Match_success; Event.Match_fail; Event.Emit_packet;
    Event.Drop_packet; Event.User "spec-test-no-such-event";
    Event.Faulted "pkt_corrupt";
  ]
  @ List.concat_map (fun s -> [ Event.User s; Event.User (copy s) ]) user_keys

let outcome f = match f () with n -> Ok n | exception Invalid_argument m -> Error m

let check_total (label : string) (p : Program.t) =
  Specialize.install p;
  let t = Option.get (Specialize.get p) in
  let events = event_universe p in
  for cs = 0 to Program.n_states p - 1 do
    List.iter
      (fun ev ->
        let spec = outcome (fun () -> Specialize.step t cs ev) in
        let interp = outcome (fun () -> Program.step p cs ev) in
        if spec <> interp then
          Alcotest.failf "%s: state %d event %s: specialized %s, interpreted %s" label
            cs (Event.to_key ev)
            (match spec with Ok n -> string_of_int n | Error m -> "raises " ^ m)
            (match interp with Ok n -> string_of_int n | Error m -> "raises " ^ m))
      events
  done

let test_jump_table_totality_specs () =
  List.iter
    (fun name ->
      let case = Progen.spec_case ~specs_dir ~name ~seed:1 ~packets:4 () in
      check_total name (program_of_case case))
    Progen.spec_names

let qcheck_jump_table_totality =
  QCheck.Test.make ~name:"dense dispatch ≡ interpreter on random programs" ~count:40
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let case = Progen.case ~seed ~profile:"uniform" ~packets:4 in
      check_total (Printf.sprintf "gen seed %d" seed) (program_of_case case);
      true)

let test_table_shape () =
  let case = Progen.spec_case ~specs_dir ~name:"sfc4" ~seed:1 ~packets:4 () in
  let p = program_of_case case in
  Specialize.install p;
  (* install is idempotent: a second call must not rebuild. *)
  let t = Option.get (Specialize.get p) in
  Specialize.install p;
  Alcotest.(check bool) "idempotent install" true
    (Option.get (Specialize.get p) == t);
  Alcotest.(check bool) "5 builtin classes at minimum" true
    (Specialize.n_classes t >= 5);
  let users = Specialize.user_classes t in
  Alcotest.(check int) "table width = builtins + user keys" (5 + List.length users)
    (Specialize.n_classes t);
  List.iteri
    (fun i (key, cls) ->
      Alcotest.(check int) (key ^ " interned densely after the builtins") (5 + i) cls)
    users;
  Specialize.remove p;
  Alcotest.(check bool) "remove detaches" false (Specialize.installed p)

(* Fused runners on action-less pseudo states must preserve the executor's
   own error text. *)
let test_runner_pseudo_state_error () =
  let case = Progen.spec_case ~specs_dir ~name:"nat" ~seed:1 ~packets:4 () in
  let p = program_of_case case in
  Specialize.install p;
  let t = Option.get (Specialize.get p) in
  let r =
    Specialize.runners t (Fault.create ())
      ~err:(Printf.sprintf "Test: control state %s has no action")
  in
  let pseudo = ref (-1) in
  Array.iteri
    (fun i (ci : Program.cs_info) ->
      if ci.Program.action = None && !pseudo < 0 then pseudo := i)
    p.Program.info;
  if !pseudo < 0 then Alcotest.fail "no pseudo state in the nat composition";
  let qname = (Program.info p !pseudo).Program.qname in
  let ctx = Worker.ctx (Worker.create ~id:0 ()) in
  Alcotest.check_raises "executor-supplied message preserved"
    (Invalid_argument ("Test: control state " ^ qname ^ " has no action"))
    (fun () -> ignore (r.(!pseudo) ctx (Nftask.create 0)))

(* ----- packet arena ----- *)

let mk_flow () =
  let gen =
    Traffic.Flowgen.create ~seed:3 ~n_flows:64
      ~size_model:(Traffic.Flowgen.Fixed 128) ()
  in
  (Traffic.Flowgen.flows gen).(0)

let test_arena_create () =
  Alcotest.(check int) "default size" Netcore.Packet.Arena.default_size
    (Netcore.Packet.Arena.size (Netcore.Packet.Arena.create ()));
  Alcotest.(check int) "explicit size" 8
    (Netcore.Packet.Arena.size (Netcore.Packet.Arena.create ~size:8 ()));
  List.iter
    (fun size ->
      match Netcore.Packet.Arena.create ~size () with
      | _ -> Alcotest.failf "size %d accepted" size
      | exception Invalid_argument _ -> ())
    [ 0; -3 ]

let test_arena_recycles_in_place () =
  let arena = Netcore.Packet.Arena.create ~size:2 () in
  let flow = mk_flow () in
  let mk () = Netcore.Packet.make ~arena ~flow ~wire_len:128 () in
  let p1 = mk () in
  let p2 = mk () in
  let id1 = p1.Netcore.Packet.id and id2 = p2.Netcore.Packet.id in
  p1.Netcore.Packet.sim_addr <- 4096;
  Bytes.fill p1.Netcore.Packet.buf 0 (Bytes.length p1.Netcore.Packet.buf) 'x';
  let p3 = mk () in
  let p4 = mk () in
  Alcotest.(check bool) "slot 0 recycled physically" true (p3 == p1);
  Alcotest.(check bool) "slot 1 recycled physically" true (p4 == p2);
  Alcotest.(check bool) "recycled ids keep the global sequence" true
    (p3.Netcore.Packet.id > id2 && p4.Netcore.Packet.id > p3.Netcore.Packet.id);
  Alcotest.(check bool) "ids re-stamped" true (p3.Netcore.Packet.id <> id1);
  (* A recycled record must equal a fresh construction field for field
     (modulo the global id sequence). *)
  let fresh = Netcore.Packet.make ~flow ~wire_len:128 () in
  Alcotest.(check bool) "buffer bytes reset" true
    (Bytes.equal p3.Netcore.Packet.buf fresh.Netcore.Packet.buf);
  Alcotest.(check int) "hdr_len" fresh.Netcore.Packet.hdr_len p3.Netcore.Packet.hdr_len;
  Alcotest.(check int) "l3_off" fresh.Netcore.Packet.l3_off p3.Netcore.Packet.l3_off;
  Alcotest.(check int) "l4_off" fresh.Netcore.Packet.l4_off p3.Netcore.Packet.l4_off;
  Alcotest.(check int) "wire_len" fresh.Netcore.Packet.wire_len
    p3.Netcore.Packet.wire_len;
  Alcotest.(check int) "sim_addr unassigned" (-1) p3.Netcore.Packet.sim_addr

let qcheck_arena_no_leak =
  QCheck.Test.make ~name:"arena never allocates beyond its ring" ~count:30
    QCheck.(pair (int_range 1 32) (int_range 1 200))
    (fun (size, count) ->
      let arena = Netcore.Packet.Arena.create ~size () in
      let flow = mk_flow () in
      let distinct = ref [] in
      for _ = 1 to count do
        let p = Netcore.Packet.make ~arena ~flow ~wire_len:96 () in
        if not (List.memq p !distinct) then distinct := p :: !distinct
      done;
      List.length !distinct = min size count)

(* Arena-fed runs equal fresh-allocation runs on every simulated metric —
   under RTC (one packet in flight, tiny ring) and under the interleaved
   scheduler (16 tasks + stash in flight, default ring). *)
let arena_nat_run ~use_arena ~scheduler =
  let s = Helpers.nat_setup ~seed:7 () in
  let arena =
    if not use_arena then None
    else if scheduler then Some (Netcore.Packet.Arena.create ())
    else Some (Netcore.Packet.Arena.create ~size:8 ())
  in
  let source =
    Workload.of_flowgen ?arena s.Helpers.gen ~pool:s.Helpers.pool ~count:2000
  in
  if scheduler then Scheduler.run s.Helpers.worker s.Helpers.program ~n_tasks:16 source
  else Rtc.run s.Helpers.worker s.Helpers.program source

let test_arena_run_identity () =
  List.iter
    (fun scheduler ->
      let fresh = arena_nat_run ~use_arena:false ~scheduler in
      let recycled = arena_nat_run ~use_arena:true ~scheduler in
      Alcotest.(check bool)
        (if scheduler then "scheduler run byte-identical" else "rtc run byte-identical")
        true
        (fresh = recycled))
    [ false; true ]

let suite =
  [
    Alcotest.test_case "observe specialize axis" `Quick test_observe_axis;
    Alcotest.test_case "spec compositions: specialized ≡ interpreted" `Quick
      test_spec_compositions;
    Alcotest.test_case "sweep: uniform" `Quick (test_sweep "uniform");
    Alcotest.test_case "sweep: zipf" `Quick (test_sweep "zipf");
    Alcotest.test_case "sweep: burst" `Quick (test_sweep "burst");
    Alcotest.test_case "sweep: mix" `Quick (test_sweep "mix");
    Alcotest.test_case "jump table totality: specs" `Quick
      test_jump_table_totality_specs;
    Helpers.qcheck qcheck_jump_table_totality;
    Alcotest.test_case "table shape + install/remove" `Quick test_table_shape;
    Alcotest.test_case "runner pseudo-state error" `Quick
      test_runner_pseudo_state_error;
    Alcotest.test_case "arena create" `Quick test_arena_create;
    Alcotest.test_case "arena recycles in place" `Quick test_arena_recycles_in_place;
    Helpers.qcheck qcheck_arena_no_leak;
    Alcotest.test_case "arena run identity" `Quick test_arena_run_identity;
  ]
