(* Executor-independent invariants: real observations from every kind of
   generated program satisfy them, tampered observations are flagged rule
   by rule, and the memory hierarchy's MSHR introspection keeps its
   promises (pending fills bounded by the MSHR count, ready_at never in
   the past). The broad sweep lives in test_oracle.ml; here each rule is
   exercised in isolation. *)

open Gunfu
open Check

let observe ?(profile = "uniform") ?(seed = 11) ?(packets = 48)
    ?(exec = Oracle.reference) () =
  let case = Progen.case ~seed ~profile ~packets in
  Oracle.observe exec (case.Oracle.c_build ~packets)

let exec_named name =
  List.find (fun x -> x.Oracle.x_name = name) (Oracle.reference :: Oracle.executors)

let test_real_observations_clean () =
  List.iter
    (fun (seed, profile, exec) ->
      let obs = observe ~seed ~profile ~exec:(exec_named exec) () in
      match Invariants.check obs with
      | [] -> ()
      | viol :: _ ->
          Alcotest.failf "seed %d/%s under %s: %a" seed profile exec
            Invariants.pp_violation viol)
    [
      (11, "uniform", "rtc");
      (11, "burst", "rr-4");
      (12, "zipf", "rf-8");
      (13, "mix", "batch-32");
    ]

let test_check_case_clean () =
  (* The CLI entry point: all executors over a fresh small case. *)
  let case = Progen.case ~seed:21 ~profile:"mix" ~packets:24 in
  match Invariants.check_case case with
  | [] -> ()
  | (exec, viol) :: _ ->
      Alcotest.failf "%s under %s: %a" case.Oracle.c_name exec
        Invariants.pp_violation viol

(* ----- each rule flags a tampered observation ----- *)

let expect_rule name rule check obs =
  match check obs with
  | [] -> Alcotest.failf "%s: tampered observation passed" name
  | viol :: _ ->
      Alcotest.(check string) (name ^ ": rule name") rule viol.Invariants.v_rule

let test_conservation_flags () =
  let obs = observe () in
  expect_rule "inflated packet counter" "conservation" Invariants.check_conservation
    {
      obs with
      Oracle.o_run = { obs.Oracle.o_run with Metrics.packets = obs.Oracle.o_run.Metrics.packets + 1 };
    };
  expect_rule "lost input item" "conservation" Invariants.check_conservation
    { obs with Oracle.o_inputs = List.tl obs.Oracle.o_inputs };
  expect_rule "wrong drop counter" "conservation" Invariants.check_conservation
    {
      obs with
      Oracle.o_run = { obs.Oracle.o_run with Metrics.drops = obs.Oracle.o_run.Metrics.drops + 1 };
    }

let test_flow_order_flags () =
  (* Burst traffic guarantees back-to-back packets of one flow; reversing
     the completion stream must therefore break per-flow order. *)
  let obs = observe ~profile:"burst" () in
  let multi =
    List.exists
      (fun e ->
        e.Oracle.e_flow >= 0
        && List.length (List.filter (fun o -> o.Oracle.e_flow = e.Oracle.e_flow) obs.Oracle.o_emits) > 1)
      obs.Oracle.o_emits
  in
  Alcotest.(check bool) "burst produced a flow with several packets" true multi;
  expect_rule "reversed completions" "flow-order" Invariants.check_flow_order
    { obs with Oracle.o_emits = List.rev obs.Oracle.o_emits }

let test_clock_flags () =
  let obs = observe () in
  (match obs.Oracle.o_emits with
  | first :: rest when rest <> [] ->
      let max_clock =
        List.fold_left (fun acc e -> max acc e.Oracle.e_clock) 0 obs.Oracle.o_emits
      in
      expect_rule "backwards clock" "clock" Invariants.check_clock
        { obs with Oracle.o_emits = { first with Oracle.e_clock = max_clock + 1 } :: rest }
  | _ -> Alcotest.fail "observation too small for the clock test");
  expect_rule "negative cycles" "clock" Invariants.check_clock
    { obs with Oracle.o_run = { obs.Oracle.o_run with Metrics.cycles = -1 } }

let test_memstats_flags () =
  let obs = observe () in
  expect_rule "MSHR budget exceeded" "memsim" Invariants.check_memstats
    { obs with Oracle.o_mshr_pending = obs.Oracle.o_mshr_limit + 1 };
  let mem = obs.Oracle.o_run.Metrics.mem in
  expect_rule "serve sum broken" "memsim" Invariants.check_memstats
    {
      obs with
      Oracle.o_run =
        {
          obs.Oracle.o_run with
          Metrics.mem = { mem with Memsim.Memstats.l1_hits = mem.Memsim.Memstats.l1_hits + 1 };
        };
    };
  expect_rule "negative counter" "memsim" Invariants.check_memstats
    {
      obs with
      Oracle.o_run =
        {
          obs.Oracle.o_run with
          Metrics.mem = { mem with Memsim.Memstats.prefetch_issued = -1 };
        };
    }

(* ----- MSHR introspection on the hierarchy itself ----- *)

(* Under any access mix, the pending-fill introspection agrees with the
   configured budget: never more deadlines than MSHRs, every ready_at
   strictly in the future, and the pair list consistent with the count. *)
let qcheck_mshr_deadlines =
  QCheck.Test.make ~name:"hierarchy: pending fills bounded, deadlines in the future"
    ~count:60
    QCheck.(list_of_size (Gen.int_range 1 80) (pair (int_bound 511) (int_bound 9)))
    (fun ops ->
      let h = Memsim.Hierarchy.create () in
      let cfg = Memsim.Hierarchy.config h in
      let now = ref 0 in
      List.for_all
        (fun (blk, kind) ->
          let addr = blk * cfg.Memsim.Hierarchy.line_bytes in
          (match kind mod 3 with
          | 0 -> ignore (Memsim.Hierarchy.read h ~now:!now ~addr ~bytes:16)
          | 1 ->
              ignore
                (Memsim.Hierarchy.prefetch h ~now:!now ~addr
                   ~bytes:(cfg.Memsim.Hierarchy.line_bytes * ((kind mod 2) + 1)))
          | _ -> ignore (Memsim.Hierarchy.write h ~now:!now ~addr ~bytes:8));
          now := !now + (kind * 3);
          let deadlines = Memsim.Hierarchy.mshr_deadlines h ~now:!now in
          List.length deadlines <= cfg.Memsim.Hierarchy.mshr_count
          && List.for_all (fun (_, ready_at) -> ready_at > !now) deadlines
          && List.length deadlines = Memsim.Hierarchy.mshr_pending_count h ~now:!now)
        ops)

let suite =
  [
    Alcotest.test_case "real observations clean" `Quick test_real_observations_clean;
    Alcotest.test_case "check_case clean" `Quick test_check_case_clean;
    Alcotest.test_case "conservation flags tampering" `Quick test_conservation_flags;
    Alcotest.test_case "flow order flags tampering" `Quick test_flow_order_flags;
    Alcotest.test_case "clock flags tampering" `Quick test_clock_flags;
    Alcotest.test_case "memstats flags tampering" `Quick test_memstats_flags;
    Helpers.qcheck qcheck_mshr_deadlines;
  ]
