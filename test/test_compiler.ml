(* The director compiler: flattening, match removal, prefetch dedup. *)

open Gunfu

let no_opt =
  {
    Compiler.match_removal = false;
    prefetch_dedup = false;
    prefetching = true;
    lint = `Off;
    verify_passes = `Off;
    specialize = false;
  }

let test_flatten_structure () =
  let s = Helpers.nat_setup ~opts:no_opt () in
  let p = s.Helpers.program in
  (* __start, __done, 7 classifier states, 1 mapper state. *)
  Alcotest.(check int) "control state count" 10 (Program.n_states p);
  Alcotest.(check bool) "start is not done" false (Program.is_done p (Program.start p));
  (* Entry: __start --packet--> nat_cls.get_key *)
  let first = Program.step p (Program.start p) Event.Packet_arrival in
  Alcotest.(check string) "entry state" "nat_cls.get_key" (Program.info p first).Program.qname

let test_flatten_walk_success_path () =
  let s = Helpers.nat_setup ~opts:no_opt () in
  let p = s.Helpers.program in
  let step_name cs ev = (Program.info p (Program.step p cs (Event.of_key ev))).Program.qname in
  let cs0 = Program.step p (Program.start p) Event.Packet_arrival in
  Alcotest.(check string) "get_key -> hash_1" "nat_cls.hash_1" (step_name cs0 "get_key_done");
  let cs1 = Program.step p cs0 (Event.User "get_key_done") in
  let cs2 = Program.step p cs1 (Event.User "hash_done") in
  Alcotest.(check string) "hash_1 -> bucket_check_1" "nat_cls.bucket_check_1"
    (Program.info p cs2).Program.qname;
  let cs3 = Program.step p cs2 (Event.User "bucket_hit") in
  (* MATCH_SUCCESS exits the classifier into the mapper. *)
  let cs4 = Program.step p cs3 Event.Match_success in
  Alcotest.(check string) "classifier exit wires to data module" "nat_map.flow_mapper"
    (Program.info p cs4).Program.qname;
  (* Mapper emits "packet", which terminates the single-NF chain. *)
  Alcotest.(check bool) "mapper exit completes" true
    (Program.is_done p (Program.step p cs4 Event.Packet_arrival))

let test_flatten_match_fail_drops () =
  let s = Helpers.nat_setup ~opts:no_opt () in
  let p = s.Helpers.program in
  let cs = Program.cs_by_name p "nat_cls.bucket_check_2" in
  Alcotest.(check bool) "MATCH_FAIL goes to done" true
    (Program.is_done p (Program.step p cs Event.Match_fail))

let test_undefined_transition_raises () =
  let s = Helpers.nat_setup ~opts:no_opt () in
  let p = s.Helpers.program in
  let cs = Program.cs_by_name p "nat_cls.get_key" in
  match Program.step p cs (Event.User "nonsense") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undefined transition must raise"

let test_missing_action_impl () =
  let s = Helpers.nat_setup () in
  let broken =
    let inst = Nfs.Classifier.instance s.Helpers.nat.Nfs.Nat.classifier in
    { inst with Compiler.i_actions = List.tl inst.Compiler.i_actions }
  in
  let nf =
    {
      Spec.n_name = "broken";
      n_modules = [ (broken.Compiler.i_name, "flow_classifier") ];
      n_transitions = [];
    }
  in
  match Compiler.compile ~name:"broken" [ broken ] nf with
  | exception Compiler.Compile_error _ -> ()
  | _ -> Alcotest.fail "missing action implementation must fail compilation"

let test_missing_binding () =
  let s = Helpers.nat_setup () in
  let inst = Nfs.Classifier.instance s.Helpers.nat.Nfs.Nat.classifier in
  let broken = { inst with Compiler.i_bindings = [] } in
  let nf =
    {
      Spec.n_name = "broken";
      n_modules = [ (broken.Compiler.i_name, "flow_classifier") ];
      n_transitions = [];
    }
  in
  match Compiler.compile ~name:"broken" [ broken ] nf with
  | exception Compiler.Compile_error _ -> ()
  | _ -> Alcotest.fail "missing prefetch binding must fail compilation"

(* ----- match removal ----- *)

let count_states_with_prefix p prefix =
  let n = ref 0 in
  for i = 0 to Program.n_states p - 1 do
    let q = (Program.info p i).Program.qname in
    if String.length q >= String.length prefix && String.sub q 0 (String.length prefix) = prefix
    then incr n
  done;
  !n

let test_match_removal_prunes_classifiers () =
  let with_mr = { Compiler.default_opts with Compiler.match_removal = true } in
  let s = Helpers.sfc_setup ~length:4 ~opts:with_mr () in
  let p = s.Helpers.s_program in
  (* Only the first classifier (lb_cls) survives; nat/nm/fw classifiers are
     gone. *)
  Alcotest.(check bool) "lb classifier kept" true (count_states_with_prefix p "lb_cls." > 0);
  Alcotest.(check int) "nat classifier removed" 0 (count_states_with_prefix p "nat_cls.");
  Alcotest.(check int) "nm classifier removed" 0 (count_states_with_prefix p "nm_cls.");
  Alcotest.(check int) "fw classifier removed" 0 (count_states_with_prefix p "fw1_cls.")

let test_match_removal_keeps_different_keys () =
  (* The UPF PDR matcher keys sub-flows differently from the UE-IP session
     classifier: match removal must keep both. *)
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let mgw = Traffic.Mgw.create ~n_sessions:64 ~n_pdrs:4 () in
  let upf =
    Nfs.Upf.create layout ~name:"upf" ~sessions:(Traffic.Mgw.sessions mgw) ~n_pdrs:4 ()
  in
  Nfs.Upf.populate upf;
  let p = Nfs.Upf.program ~opts:{ Compiler.default_opts with Compiler.match_removal = true } upf in
  Alcotest.(check bool) "session classifier kept" true
    (count_states_with_prefix p "upf_cls." > 0);
  Alcotest.(check bool) "pdr matcher kept" true (count_states_with_prefix p "upf_pdr." > 0)

let test_match_removal_preserves_behaviour () =
  (* Same traffic, with and without MR: all packets must complete with the
     same per-flow effects (NAT rewrite identical). *)
  let run opts =
    let s = Helpers.sfc_setup ~length:4 ~opts () in
    let r = Rtc.run s.Helpers.s_worker s.Helpers.s_program
        (Workload.of_flowgen s.Helpers.s_gen ~pool:s.Helpers.s_pool ~count:2000) in
    (r, s)
  in
  let r_plain, s_plain = run Compiler.default_opts in
  let r_mr, s_mr = run { Compiler.default_opts with Compiler.match_removal = true } in
  Alcotest.(check int) "same packet count" r_plain.Metrics.packets r_mr.Metrics.packets;
  Alcotest.(check int) "same drops" r_plain.Metrics.drops r_mr.Metrics.drops;
  (* Monitor accounting must agree flow-by-flow (same seed => same traffic). *)
  let nm_plain = Option.get s_plain.Helpers.s_sfc.Nfs.Sfc.nm in
  let nm_mr = Option.get s_mr.Helpers.s_sfc.Nfs.Sfc.nm in
  Alcotest.(check (array int)) "per-flow packet counters identical"
    nm_plain.Nfs.Monitor.pkt_count nm_mr.Nfs.Monitor.pkt_count

let test_match_removal_faster () =
  let run opts =
    let s = Helpers.sfc_setup ~n_flows:65536 ~length:6 ~opts () in
    Scheduler.run s.Helpers.s_worker s.Helpers.s_program ~n_tasks:16
      (Workload.of_flowgen s.Helpers.s_gen ~pool:s.Helpers.s_pool ~count:20_000)
  in
  let plain = run Compiler.default_opts in
  let mr = run { Compiler.default_opts with Compiler.match_removal = true } in
  Alcotest.(check bool) "MR at least 1.5x faster on len-6 SFC" true
    (Metrics.mpps mr > 1.5 *. Metrics.mpps plain)

(* ----- prefetch dedup ----- *)

let prefetch_of p name = (Program.info p (Program.cs_by_name p name)).Program.prefetch

let test_prefetch_dedup_removes_header () =
  (* In an SFC every classifier's get_key wants the packet header; after the
     first fetch it is resident for the packet's lifetime, so dedup must
     strip it from later classifiers. *)
  let with_dedup = Compiler.default_opts in
  let s = Helpers.sfc_setup ~length:2 ~opts:with_dedup () in
  let p = s.Helpers.s_program in
  let has_header name =
    List.exists
      (fun t -> match t with Prefetch.Packet_header _ -> true | _ -> false)
      (prefetch_of p name)
  in
  Alcotest.(check bool) "first classifier fetches header" true (has_header "lb_cls.get_key");
  Alcotest.(check bool) "second classifier header deduped" false
    (has_header "nat_cls.get_key")

let test_prefetch_dedup_keeps_match_addrs () =
  (* match_addrs are invalidated by every hash action, so bucket checks must
     keep their prefetch in both classifiers. *)
  let s = Helpers.sfc_setup ~length:2 () in
  let p = s.Helpers.s_program in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " keeps match prefetch") true
        (List.exists
           (fun t -> Prefetch.equal_target t Prefetch.Match_addrs)
           (prefetch_of p name)))
    [ "lb_cls.bucket_check_1"; "nat_cls.bucket_check_1"; "nat_cls.key_check_1" ]

let test_prefetch_dedup_off () =
  let s = Helpers.sfc_setup ~length:2 ~opts:no_opt () in
  let p = s.Helpers.s_program in
  let has_header name =
    List.exists
      (fun t -> match t with Prefetch.Packet_header _ -> true | _ -> false)
      (prefetch_of p name)
  in
  Alcotest.(check bool) "without dedup the second header prefetch stays" true
    (has_header "nat_cls.get_key")

let test_prefetching_disabled () =
  let opts = { Compiler.default_opts with Compiler.prefetching = false } in
  let s = Helpers.nat_setup ~opts () in
  let p = s.Helpers.program in
  for i = 0 to Program.n_states p - 1 do
    Alcotest.(check (list string)) "no prefetch targets" []
      (List.map (Fmt.str "%a" Prefetch.pp_target) (Program.info p i).Program.prefetch)
  done

let suite =
  [
    Alcotest.test_case "flatten structure" `Quick test_flatten_structure;
    Alcotest.test_case "flatten success path" `Quick test_flatten_walk_success_path;
    Alcotest.test_case "match fail drops" `Quick test_flatten_match_fail_drops;
    Alcotest.test_case "undefined transition raises" `Quick test_undefined_transition_raises;
    Alcotest.test_case "missing action impl" `Quick test_missing_action_impl;
    Alcotest.test_case "missing binding" `Quick test_missing_binding;
    Alcotest.test_case "MR prunes classifiers" `Quick test_match_removal_prunes_classifiers;
    Alcotest.test_case "MR keeps different keys" `Quick test_match_removal_keeps_different_keys;
    Alcotest.test_case "MR preserves behaviour" `Quick test_match_removal_preserves_behaviour;
    Alcotest.test_case "MR is faster" `Slow test_match_removal_faster;
    Alcotest.test_case "dedup removes header" `Quick test_prefetch_dedup_removes_header;
    Alcotest.test_case "dedup keeps match addrs" `Quick test_prefetch_dedup_keeps_match_addrs;
    Alcotest.test_case "dedup off keeps header" `Quick test_prefetch_dedup_off;
    Alcotest.test_case "prefetching disabled" `Quick test_prefetching_disabled;
  ]
