(* PFCP wire codec, the UPF's N4 agent, and the SMF driving it. *)

open Gunfu

let ran_ip = Netcore.Ipv4.addr_of_string "10.200.1.1"

(* ----- codec ----- *)

let sample_establishment () =
  let pdrs, fars = Nfs.Smf.rules ~n_pdrs:4 ~teid:0x1234l ~ran_ip in
  {
    Netcore.Pfcp.seid = 0L;
    seq = 7;
    payload =
      Netcore.Pfcp.Establishment_request
        {
          Netcore.Pfcp.cp_seid = 42L;
          cp_addr = Netcore.Ipv4.addr_of_string "10.250.1.1";
          ue_ip = Netcore.Ipv4.addr_of_string "100.64.0.5";
          pdrs;
          fars;
        };
  }

let test_codec_roundtrip_establishment () =
  let pkt = sample_establishment () in
  let decoded = Netcore.Pfcp.decode (Netcore.Pfcp.encode pkt) in
  Alcotest.(check int) "seq" 7 decoded.Netcore.Pfcp.seq;
  match decoded.Netcore.Pfcp.payload with
  | Netcore.Pfcp.Establishment_request e ->
      Alcotest.(check int64) "cp seid" 42L e.Netcore.Pfcp.cp_seid;
      Alcotest.(check string) "ue ip" "100.64.0.5"
        (Netcore.Ipv4.addr_to_string e.Netcore.Pfcp.ue_ip);
      Alcotest.(check int) "pdr count" 4 (List.length e.Netcore.Pfcp.pdrs);
      Alcotest.(check int) "far count" 1 (List.length e.Netcore.Pfcp.fars);
      let p0 = List.hd e.Netcore.Pfcp.pdrs in
      let lo, hi = Traffic.Mgw.pdr_port_range ~n_pdrs:4 ~pdr:0 in
      Alcotest.(check (pair int int)) "pdi range"
        (lo, hi)
        (p0.Netcore.Pfcp.pdi.Netcore.Pfcp.src_port_lo,
         p0.Netcore.Pfcp.pdi.Netcore.Pfcp.src_port_hi);
      let f0 = List.hd e.Netcore.Pfcp.fars in
      Alcotest.(check int32) "far teid" 0x1234l f0.Netcore.Pfcp.outer_teid;
      Alcotest.(check bool) "forward bit" true f0.Netcore.Pfcp.forward
  | _ -> Alcotest.fail "wrong payload"

let test_codec_roundtrip_responses () =
  let resp =
    {
      Netcore.Pfcp.seid = 42L;
      seq = 8;
      payload =
        Netcore.Pfcp.Establishment_response
          { cause = Netcore.Pfcp.cause_accepted; up_seid = 99L };
    }
  in
  (match Netcore.Pfcp.decode (Netcore.Pfcp.encode resp) with
  | { Netcore.Pfcp.payload = Netcore.Pfcp.Establishment_response r; seid; _ } ->
      Alcotest.(check int64) "resp seid" 42L seid;
      Alcotest.(check int) "cause" Netcore.Pfcp.cause_accepted r.cause;
      Alcotest.(check int64) "up seid" 99L r.up_seid
  | _ -> Alcotest.fail "wrong payload");
  let del = { Netcore.Pfcp.seid = 99L; seq = 9; payload = Netcore.Pfcp.Deletion_request } in
  match Netcore.Pfcp.decode (Netcore.Pfcp.encode del) with
  | { Netcore.Pfcp.payload = Netcore.Pfcp.Deletion_request; seid = 99L; _ } -> ()
  | _ -> Alcotest.fail "deletion roundtrip failed"

let test_codec_rejects_malformed () =
  List.iter
    (fun s ->
      match Netcore.Pfcp.decode s with
      | exception Netcore.Pfcp.Malformed _ -> ()
      | _ -> Alcotest.fail "malformed PFCP accepted")
    [
      "";
      "\x21";
      (* bad version *)
      "\x11\x32\x00\x0c\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00";
      (* length mismatch *)
      "\x21\x32\x00\xff\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00";
    ]

let test_codec_truncated_ie () =
  let pkt = Netcore.Pfcp.encode (sample_establishment ()) in
  let cut = String.sub pkt 0 (String.length pkt - 3) in
  (* Fix up the length field so only the IE is truncated. *)
  let b = Bytes.of_string cut in
  Bytes.set b 2 (Char.chr ((String.length cut - 4) lsr 8));
  Bytes.set b 3 (Char.chr ((String.length cut - 4) land 0xFF));
  match Netcore.Pfcp.decode (Bytes.to_string b) with
  | exception Netcore.Pfcp.Malformed _ -> ()
  | _ -> Alcotest.fail "truncated IE accepted"

(* ----- UPF N4 agent + SMF ----- *)

let empty_upf ?(capacity = 128) ?(n_pdrs = 4) () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let upf = Nfs.Upf.create_empty layout ~name:"upf" ~capacity ~n_pdrs () in
  (worker, layout, upf)

let ue i = Int32.of_int (0x64000000 lor i)

let test_smf_establishes_sessions () =
  let _, _, upf = empty_upf () in
  let smf = Nfs.Smf.create () in
  for i = 1 to 100 do
    match Nfs.Smf.establish smf upf ~ue_ip:(ue i) ~teid:(Int32.of_int (0x5000 + i)) ~ran_ip with
    | Ok _ -> ()
    | Error c -> Alcotest.failf "establishment %d rejected with cause %d" i c
  done;
  Alcotest.(check int) "SMF tracks sessions" 100 (Nfs.Smf.n_established smf);
  Alcotest.(check int) "UPF installed sessions" 100 upf.Nfs.Upf.n_active

let test_duplicate_ue_rejected () =
  let _, _, upf = empty_upf () in
  let smf = Nfs.Smf.create () in
  ignore (Nfs.Smf.establish smf upf ~ue_ip:(ue 1) ~teid:0x5001l ~ran_ip);
  match Nfs.Smf.establish smf upf ~ue_ip:(ue 1) ~teid:0x5002l ~ran_ip with
  | Error c ->
      Alcotest.(check int) "rejected" Netcore.Pfcp.cause_request_rejected c
  | Ok _ -> Alcotest.fail "duplicate UE IP accepted"

let test_capacity_exhaustion () =
  let _, _, upf = empty_upf ~capacity:3 () in
  let smf = Nfs.Smf.create () in
  for i = 1 to 3 do
    ignore (Nfs.Smf.establish smf upf ~ue_ip:(ue i) ~teid:(Int32.of_int i) ~ran_ip)
  done;
  match Nfs.Smf.establish smf upf ~ue_ip:(ue 9) ~teid:9l ~ran_ip with
  | Error c -> Alcotest.(check int) "no resources" Netcore.Pfcp.cause_no_resources c
  | Ok _ -> Alcotest.fail "over-capacity establishment accepted"

let test_wrong_pdr_shape_rejected () =
  let _, _, upf = empty_upf ~n_pdrs:4 () in
  let smf = Nfs.Smf.create () in
  (* Request with 2 PDRs against a 4-PDR UPF shape. *)
  let request = Nfs.Smf.establishment_request smf ~ue_ip:(ue 1) ~teid:1l ~n_pdrs:2 ~ran_ip in
  match Netcore.Pfcp.decode (Nfs.Upf.handle_pfcp upf request) with
  | { Netcore.Pfcp.payload = Netcore.Pfcp.Establishment_response r; _ } ->
      Alcotest.(check int) "shape mismatch rejected" Netcore.Pfcp.cause_request_rejected
        r.cause
  | _ -> Alcotest.fail "unexpected response"

let test_traffic_after_establishment () =
  let worker, layout, upf = empty_upf () in
  let smf = Nfs.Smf.create () in
  let teid = 0xABCDl in
  (match Nfs.Smf.establish smf upf ~ue_ip:(ue 7) ~teid ~ran_ip with
  | Ok _ -> ()
  | Error c -> Alcotest.failf "rejected: %d" c);
  let program = Nfs.Upf.program upf in
  let pool = Netcore.Packet.Pool.create layout ~count:16 in
  (* A downlink packet towards the established UE. *)
  let lo, _ = Traffic.Mgw.pdr_port_range ~n_pdrs:4 ~pdr:2 in
  let flow =
    Netcore.Flow.make ~src_ip:0x08080808l ~dst_ip:(ue 7) ~src_port:lo ~dst_port:10007
      ~proto:Netcore.Ipv4.proto_udp
  in
  let pkt = Netcore.Packet.make ~flow ~wire_len:128 () in
  Netcore.Packet.Pool.assign pool pkt;
  let r = Helpers.run_one worker program pkt in
  Alcotest.(check int) "forwarded through the PFCP-installed session" 0 r.Metrics.drops;
  Alcotest.(check int32) "tunnel teid from the FAR" teid (Netcore.Packet.decapsulate_gtpu pkt)

let test_deletion_stops_traffic () =
  let worker, layout, upf = empty_upf () in
  let smf = Nfs.Smf.create () in
  let up_seid =
    match Nfs.Smf.establish smf upf ~ue_ip:(ue 7) ~teid:1l ~ran_ip with
    | Ok s -> s
    | Error c -> Alcotest.failf "rejected: %d" c
  in
  Alcotest.(check int) "deletion accepted" Netcore.Pfcp.cause_accepted
    (Nfs.Smf.delete smf upf ~up_seid);
  Alcotest.(check int) "SMF forgets the session" 0 (Nfs.Smf.n_established smf);
  (* Traffic for the deleted session now drops. *)
  let program = Nfs.Upf.program upf in
  let pool = Netcore.Packet.Pool.create layout ~count:16 in
  let flow =
    Netcore.Flow.make ~src_ip:1l ~dst_ip:(ue 7) ~src_port:2000 ~dst_port:1
      ~proto:Netcore.Ipv4.proto_udp
  in
  let pkt = Netcore.Packet.make ~flow ~wire_len:64 () in
  Netcore.Packet.Pool.assign pool pkt;
  let r = Helpers.run_one worker program pkt in
  Alcotest.(check int) "dropped after deletion" 1 r.Metrics.drops;
  (* Deleting again: session not found. *)
  Alcotest.(check int) "second deletion fails" Netcore.Pfcp.cause_session_not_found
    (Nfs.Smf.delete smf upf ~up_seid)

let test_agent_survives_garbage () =
  let _, _, upf = empty_upf () in
  let response = Nfs.Upf.handle_pfcp upf "not pfcp at all" in
  match Netcore.Pfcp.decode response with
  | { Netcore.Pfcp.payload = Netcore.Pfcp.Establishment_response r; _ } ->
      Alcotest.(check int) "garbage rejected gracefully"
        Netcore.Pfcp.cause_request_rejected r.cause
  | _ -> Alcotest.fail "expected a rejection response"

let qcheck_codec_roundtrip =
  QCheck.Test.make ~name:"PFCP establishment roundtrips for any shape" ~count:100
    QCheck.(triple (int_range 1 32) (int_range 0 0xFFFF) small_int)
    (fun (n_pdrs, teid, ue_i) ->
      let pdrs, fars = Nfs.Smf.rules ~n_pdrs ~teid:(Int32.of_int teid) ~ran_ip in
      let pkt =
        {
          Netcore.Pfcp.seid = 0L;
          seq = 1;
          payload =
            Netcore.Pfcp.Establishment_request
              {
                Netcore.Pfcp.cp_seid = Int64.of_int ue_i;
                cp_addr = 1l;
                ue_ip = Int32.of_int ue_i;
                pdrs;
                fars;
              };
        }
      in
      match Netcore.Pfcp.decode (Netcore.Pfcp.encode pkt) with
      | { Netcore.Pfcp.payload = Netcore.Pfcp.Establishment_request e; _ } ->
          List.length e.Netcore.Pfcp.pdrs = n_pdrs
          && (List.hd e.Netcore.Pfcp.fars).Netcore.Pfcp.outer_teid = Int32.of_int teid
      | _ -> false)

let suite =
  [
    Alcotest.test_case "codec: establishment roundtrip" `Quick
      test_codec_roundtrip_establishment;
    Alcotest.test_case "codec: response roundtrips" `Quick test_codec_roundtrip_responses;
    Alcotest.test_case "codec: malformed rejected" `Quick test_codec_rejects_malformed;
    Alcotest.test_case "codec: truncated IE" `Quick test_codec_truncated_ie;
    Alcotest.test_case "smf establishes 100 sessions" `Quick test_smf_establishes_sessions;
    Alcotest.test_case "duplicate UE rejected" `Quick test_duplicate_ue_rejected;
    Alcotest.test_case "capacity exhaustion" `Quick test_capacity_exhaustion;
    Alcotest.test_case "wrong PDR shape rejected" `Quick test_wrong_pdr_shape_rejected;
    Alcotest.test_case "traffic after establishment" `Quick test_traffic_after_establishment;
    Alcotest.test_case "deletion stops traffic" `Quick test_deletion_stops_traffic;
    Alcotest.test_case "agent survives garbage" `Quick test_agent_survives_garbage;
    Helpers.qcheck qcheck_codec_roundtrip;
  ]
