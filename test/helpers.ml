(* Shared builders for the integration tests: small NF deployments on a
   fresh worker. *)

open Gunfu

(* Deterministic QCheck wrapper: every property suite takes its seed from
   QCHECK_SEED when set and a fixed default otherwise, so CI runs are
   reproducible and a failure's seed is always known. *)
let qcheck_seed () =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some s -> s
  | None -> 42

let qcheck test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| qcheck_seed () |]) test

type nat_setup = {
  worker : Worker.t;
  gen : Traffic.Flowgen.t;
  pool : Netcore.Packet.Pool.pool;
  nat : Nfs.Nat.t;
  program : Program.t;
}

let nat_setup ?(n_flows = 4096) ?(opts = Compiler.default_opts) ?(seed = 1) () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let gen =
    Traffic.Flowgen.create ~seed ~n_flows ~size_model:(Traffic.Flowgen.Fixed 128) ()
  in
  let pool = Netcore.Packet.Pool.create layout ~count:256 in
  let nat = Nfs.Nat.create layout ~name:"nat" ~n_flows () in
  Nfs.Nat.populate nat (Traffic.Flowgen.flows gen);
  let program = Nfs.Nat.program ~opts nat in
  { worker; gen; pool; nat; program }

let nat_source s ~count = Workload.of_flowgen s.gen ~pool:s.pool ~count

type sfc_setup = {
  s_worker : Worker.t;
  s_gen : Traffic.Flowgen.t;
  s_pool : Netcore.Packet.Pool.pool;
  s_sfc : Nfs.Sfc.t;
  s_program : Program.t;
}

let sfc_setup ?(n_flows = 4096) ?(length = 4) ?(packed = false)
    ?(opts = Compiler.default_opts) () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let gen =
    Traffic.Flowgen.create ~seed:2 ~n_flows ~size_model:(Traffic.Flowgen.Fixed 128) ()
  in
  let pool = Netcore.Packet.Pool.create layout ~count:256 in
  let sfc = Nfs.Sfc.create layout ~length ~packed ~n_flows () in
  Nfs.Sfc.populate sfc (Traffic.Flowgen.flows gen);
  let program = Nfs.Sfc.program ~opts sfc in
  { s_worker = worker; s_gen = gen; s_pool = pool; s_sfc = sfc; s_program = program }

let upf_setup ?(n_sessions = 1024) ?(n_pdrs = 8) () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let mgw = Traffic.Mgw.create ~n_sessions ~n_pdrs () in
  let pool = Netcore.Packet.Pool.create layout ~count:256 in
  let upf =
    Nfs.Upf.create layout ~name:"upf" ~sessions:(Traffic.Mgw.sessions mgw) ~n_pdrs ()
  in
  Nfs.Upf.populate upf;
  (worker, mgw, pool, upf, Nfs.Upf.program upf)

let amf_setup ?(n_ues = 1024) ?(packed = false) () =
  let worker = Worker.create ~id:0 () in
  let layout = Worker.layout worker in
  let gen = Traffic.Mgw.amf_create ~n_ues () in
  let pool = Netcore.Packet.Pool.create layout ~count:256 in
  let amf = Nfs.Amf.create layout ~name:"amf" ~packed ~n_ues () in
  Nfs.Amf.populate amf;
  (worker, gen, pool, amf, Nfs.Amf.program amf)

(* Run one specific packet through a program under RTC on a fresh task and
   return the run. *)
let run_one worker program ?(aux = 0) ?(flow_hint = -1) packet =
  Rtc.run worker program
    (Workload.total_items [ { Workload.packet = Some packet; aux; flow_hint } ])
