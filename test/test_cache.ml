(* Set-associative cache level. *)

open Memsim

let mk ?(size = 1024) ?(assoc = 2) ?(line = 64) () =
  Cache.create ~name:"t" ~size_bytes:size ~assoc ~line_bytes:line

let test_geometry () =
  let c = mk () in
  Alcotest.(check int) "nsets" 8 (Cache.nsets c);
  Alcotest.(check int) "assoc" 2 (Cache.assoc c);
  Alcotest.(check int) "line bytes" 64 (Cache.line_bytes c);
  Alcotest.(check int) "capacity" 1024 (Cache.capacity_bytes c)

let test_geometry_validation () =
  Alcotest.check_raises "line not power of two"
    (Invalid_argument "line_bytes: must be a power of two") (fun () ->
      ignore (Cache.create ~name:"x" ~size_bytes:960 ~assoc:2 ~line_bytes:48));
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Cache.create: size not divisible by assoc * line_bytes") (fun () ->
      ignore (Cache.create ~name:"x" ~size_bytes:1000 ~assoc:2 ~line_bytes:64))

let test_non_pow2_sets () =
  (* 33 MiB 11-way LLC: 49152 sets, modulo indexing. *)
  let c =
    Cache.create ~name:"llc" ~size_bytes:(33 * 1024 * 1024) ~assoc:11 ~line_bytes:64
  in
  Alcotest.(check int) "nsets" 49152 (Cache.nsets c);
  ignore (Cache.install c 0x12340);
  Alcotest.(check bool) "installed line present" true (Cache.contains c 0x12340)

let test_miss_then_hit () =
  let c = mk () in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0x1000);
  ignore (Cache.install c 0x1000);
  Alcotest.(check bool) "hit after install" true (Cache.access c 0x1000);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c)

let test_same_line_different_offsets () =
  let c = mk () in
  ignore (Cache.install c 0x1000);
  Alcotest.(check bool) "offset within same line hits" true (Cache.access c 0x103F)

let test_lru_eviction () =
  let c = mk ~size:256 ~assoc:2 ~line:64 () in
  (* 2 sets; lines mapping to set 0: line numbers 0, 2, 4... addr = line*64 *)
  ignore (Cache.install c 0);
  (* line 0, set 0 *)
  ignore (Cache.install c (2 * 64));
  (* line 2, set 0; set full *)
  ignore (Cache.access c 0);
  (* make line 0 the MRU *)
  let evicted = Cache.install c (4 * 64) in
  Alcotest.(check (option int)) "LRU victim is line 2" (Some 2) evicted;
  Alcotest.(check bool) "line 0 survives" true (Cache.contains c 0);
  Alcotest.(check bool) "line 2 gone" false (Cache.contains c (2 * 64));
  Alcotest.(check bool) "line 4 present" true (Cache.contains c (4 * 64))

let test_install_refreshes_recency () =
  let c = mk ~size:256 ~assoc:2 ~line:64 () in
  ignore (Cache.install c 0);
  ignore (Cache.install c (2 * 64));
  (* re-install line 0: now MRU; victim should be line 2 *)
  Alcotest.(check (option int)) "reinstall returns no victim" None (Cache.install c 0);
  Alcotest.(check (option int)) "line 2 is LRU" (Some 2) (Cache.install c (4 * 64))

let test_invalid_way_preferred () =
  let c = mk ~size:256 ~assoc:2 ~line:64 () in
  ignore (Cache.install c 0);
  Alcotest.(check (option int)) "no eviction while invalid way exists" None
    (Cache.install c (2 * 64))

let test_sets_isolated () =
  let c = mk ~size:256 ~assoc:2 ~line:64 () in
  (* Fill set 0 beyond capacity: set 1 must be untouched. *)
  ignore (Cache.install c (1 * 64));
  (* set 1 *)
  ignore (Cache.install c 0);
  ignore (Cache.install c (2 * 64));
  ignore (Cache.install c (4 * 64));
  Alcotest.(check bool) "set-1 resident survives set-0 thrash" true (Cache.contains c (1 * 64))

let test_invalidate () =
  let c = mk () in
  ignore (Cache.install c 0x2000);
  Cache.invalidate c 0x2000;
  Alcotest.(check bool) "gone after invalidate" false (Cache.contains c 0x2000)

let test_clear () =
  let c = mk () in
  ignore (Cache.install c 0x2000);
  ignore (Cache.install c 0x4000);
  Cache.clear c;
  Alcotest.(check int) "no resident lines" 0 (Cache.resident_lines c);
  Alcotest.(check bool) "counters preserved" true (Cache.installs c = 2)

let test_resident_lines () =
  let c = mk () in
  ignore (Cache.install c 0);
  ignore (Cache.install c 64);
  ignore (Cache.install c 64);
  (* duplicate *)
  Alcotest.(check int) "two distinct lines" 2 (Cache.resident_lines c)

let test_contains_no_stats () =
  let c = mk () in
  ignore (Cache.install c 0);
  ignore (Cache.contains c 0);
  ignore (Cache.contains c 0x9999);
  Alcotest.(check int) "contains does not count hits" 0 (Cache.hits c);
  Alcotest.(check int) "contains does not count misses" 0 (Cache.misses c)

let qcheck_capacity_bound =
  QCheck.Test.make ~name:"resident lines never exceed capacity" ~count:100
    QCheck.(list_of_size (Gen.return 200) (int_bound 10_000))
    (fun addrs ->
      let c = mk ~size:512 ~assoc:2 ~line:64 () in
      List.iter (fun a -> ignore (Cache.install c (a * 8))) addrs;
      Cache.resident_lines c <= 8)

let qcheck_install_then_contains =
  QCheck.Test.make ~name:"freshly installed line is resident" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun addr ->
      let c = mk () in
      ignore (Cache.install c addr);
      Cache.contains c addr)

let suite =
  [
    Alcotest.test_case "geometry" `Quick test_geometry;
    Alcotest.test_case "geometry validation" `Quick test_geometry_validation;
    Alcotest.test_case "non-power-of-two sets" `Quick test_non_pow2_sets;
    Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
    Alcotest.test_case "same line offsets" `Quick test_same_line_different_offsets;
    Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
    Alcotest.test_case "install refreshes recency" `Quick test_install_refreshes_recency;
    Alcotest.test_case "invalid way preferred" `Quick test_invalid_way_preferred;
    Alcotest.test_case "sets isolated" `Quick test_sets_isolated;
    Alcotest.test_case "invalidate" `Quick test_invalidate;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "resident lines" `Quick test_resident_lines;
    Alcotest.test_case "contains is stat-free" `Quick test_contains_no_stats;
    Helpers.qcheck qcheck_capacity_bound;
    Helpers.qcheck qcheck_install_then_contains;
  ]
